#include "search/space.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "sim/presets.hh"

namespace cfl::search
{

namespace
{

/** Parse a strictly-positive decimal axis value. */
std::uint64_t
parseValue(const std::string &axis, const std::string &text)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        cfl_fatal("axis \"%s\": value \"%s\" is not a decimal integer",
                  axis.c_str(), text.c_str());
    const std::uint64_t v = std::stoull(text);
    if (v == 0)
        cfl_fatal("axis \"%s\": 0 is reserved for \"unset\"",
                  axis.c_str());
    return v;
}

} // namespace

const std::vector<std::string> &
axisVocabulary()
{
    static const std::vector<std::string> kAxes = {
        "btb_entries",        "btb_ways",
        "l2_entries",         "air_bundles",
        "air_branch_entries", "air_overflow_entries",
        "shift_history",      "shift_stream_depth",
    };
    return kAxes;
}

bool
axisRelevant(const std::string &axis, FrontendKind kind)
{
    if (axis == "btb_entries" || axis == "btb_ways")
        return kind == FrontendKind::Baseline ||
               kind == FrontendKind::Fdp ||
               kind == FrontendKind::IdealBtbShift;
    if (axis == "l2_entries")
        return kind == FrontendKind::TwoLevelFdp ||
               kind == FrontendKind::TwoLevelShift;
    if (axis == "air_bundles" || axis == "air_branch_entries" ||
        axis == "air_overflow_entries")
        return kind == FrontendKind::Confluence;
    if (axis == "shift_history" || axis == "shift_stream_depth")
        return usesShift(kind);
    cfl_fatal("unknown search axis \"%s\"", axis.c_str());
}

std::uint64_t &
overlayField(DesignOverlay &overlay, const std::string &axis)
{
    if (axis == "btb_entries")
        return overlay.btbEntries;
    if (axis == "btb_ways")
        return overlay.btbWays;
    if (axis == "l2_entries")
        return overlay.l2Entries;
    if (axis == "air_bundles")
        return overlay.airBundles;
    if (axis == "air_branch_entries")
        return overlay.airBranchEntries;
    if (axis == "air_overflow_entries")
        return overlay.airOverflowEntries;
    if (axis == "shift_history")
        return overlay.shiftHistoryEntries;
    if (axis == "shift_stream_depth")
        return overlay.shiftStreamDepth;
    cfl_fatal("unknown search axis \"%s\"", axis.c_str());
}

DesignSpace
DesignSpace::parse(const std::string &spec)
{
    DesignSpace space;
    std::vector<Axis> byName; // spec order, reordered canonically below

    std::istringstream in(spec);
    std::string entry;
    while (std::getline(in, entry, ';')) {
        if (entry.empty())
            cfl_fatal("empty entry in space spec \"%s\"", spec.c_str());
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= entry.size())
            cfl_fatal("space entry \"%s\" is not name=v1,v2,...",
                      entry.c_str());
        const std::string name = entry.substr(0, eq);
        const std::vector<std::string> values =
            splitList(entry.substr(eq + 1));
        if (name == "kinds") {
            if (!space.kinds.empty())
                cfl_fatal("duplicate \"kinds\" entry in space spec");
            for (const std::string &slug : values) {
                const FrontendKind kind = frontendKindFromSlug(slug);
                if (std::find(space.kinds.begin(), space.kinds.end(),
                              kind) != space.kinds.end())
                    cfl_fatal("duplicate kind \"%s\" in space spec",
                              slug.c_str());
                space.kinds.push_back(kind);
            }
            continue;
        }
        if (std::find(axisVocabulary().begin(), axisVocabulary().end(),
                      name) == axisVocabulary().end())
            cfl_fatal("unknown search axis \"%s\"", name.c_str());
        for (const Axis &a : byName)
            if (a.name == name)
                cfl_fatal("duplicate axis \"%s\" in space spec",
                          name.c_str());
        Axis axis;
        axis.name = name;
        for (const std::string &v : values) {
            const std::uint64_t value = parseValue(name, v);
            if (std::find(axis.values.begin(), axis.values.end(),
                          value) != axis.values.end())
                cfl_fatal("duplicate value %llu on axis \"%s\"",
                          static_cast<unsigned long long>(value),
                          name.c_str());
            axis.values.push_back(value);
        }
        byName.push_back(std::move(axis));
    }
    if (space.kinds.empty())
        cfl_fatal("space spec \"%s\" has no kinds= entry", spec.c_str());

    // Canonical axis order, independent of spec order, so two spellings
    // of one space enumerate (and journal) identically.
    for (const std::string &name : axisVocabulary())
        for (Axis &a : byName)
            if (a.name == name)
                space.axes.push_back(std::move(a));
    return space;
}

std::string
DesignSpace::encode() const
{
    std::ostringstream out;
    out << "kinds=";
    for (std::size_t i = 0; i < kinds.size(); ++i)
        out << (i > 0 ? "," : "") << frontendKindSlug(kinds[i]);
    for (const Axis &axis : axes) {
        out << ";" << axis.name << "=";
        for (std::size_t i = 0; i < axis.values.size(); ++i)
            out << (i > 0 ? "," : "") << axis.values[i];
    }
    return out.str();
}

std::string
Candidate::slug() const
{
    std::string out = frontendKindSlug(kind);
    DesignOverlay copy = overlay;
    for (const std::string &axis : axisVocabulary()) {
        const std::uint64_t value = overlayField(copy, axis);
        if (value != 0) {
            out += "+" + axis + "=" + std::to_string(value);
        }
    }
    return out;
}

Candidate
candidateFromSlug(const std::string &slug)
{
    Candidate c;
    std::istringstream in(slug);
    std::string part;
    bool first = true;
    while (std::getline(in, part, '+')) {
        if (first) {
            c.kind = frontendKindFromSlug(part);
            first = false;
            continue;
        }
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size())
            cfl_fatal("candidate slug part \"%s\" is not axis=value",
                      part.c_str());
        const std::string axis = part.substr(0, eq);
        overlayField(c.overlay, axis) =
            parseValue(axis, part.substr(eq + 1));
    }
    if (first)
        cfl_fatal("empty candidate slug");
    return c;
}

bool
validCandidate(const Candidate &candidate)
{
    SystemConfig cfg = makeSystemConfig(1);
    candidate.overlay.applyTo(cfg);

    const auto setAssocOk = [](std::uint64_t entries, unsigned ways) {
        return ways > 0 && entries > 0 && entries % ways == 0 &&
               isPowerOfTwo(entries / ways);
    };

    switch (candidate.kind) {
      case FrontendKind::Baseline:
      case FrontendKind::Fdp:
        if (!setAssocOk(cfg.baselineBtb.entries, cfg.baselineBtb.ways))
            return false;
        break;
      case FrontendKind::IdealBtbShift:
        if (!setAssocOk(cfg.idealBtb.entries, cfg.idealBtb.ways))
            return false;
        break;
      case FrontendKind::TwoLevelFdp:
      case FrontendKind::TwoLevelShift:
        if (!setAssocOk(cfg.twoLevel.l1Entries, cfg.twoLevel.l1Ways) ||
            !setAssocOk(cfg.twoLevel.l2Entries, cfg.twoLevel.l2Ways))
            return false;
        break;
      case FrontendKind::Confluence:
        if (!setAssocOk(cfg.air.bundles, cfg.air.ways))
            return false;
        if (cfg.air.branchEntries < 1 || cfg.air.branchEntries > 8)
            return false;
        break;
      default:
        break;
    }
    if (usesShift(candidate.kind) &&
        (cfg.shift.historyEntries == 0 || cfg.shift.streamDepth == 0))
        return false;
    return true;
}

std::vector<Candidate>
enumerateCandidates(const DesignSpace &space)
{
    std::vector<Candidate> out;
    std::set<std::string> seen;

    for (const FrontendKind kind : space.kinds) {
        // Per-kind cross product over the *relevant* axes only; the
        // irrelevant ones stay unset, which is exactly the masking that
        // keeps digest-distinct-but-result-identical overlays out.
        std::vector<const Axis *> axes;
        for (const Axis &axis : space.axes)
            if (axisRelevant(axis.name, kind))
                axes.push_back(&axis);

        std::vector<std::size_t> index(axes.size(), 0);
        while (true) {
            Candidate c;
            c.kind = kind;
            for (std::size_t a = 0; a < axes.size(); ++a)
                overlayField(c.overlay, axes[a]->name) =
                    axes[a]->values[index[a]];
            if (validCandidate(c) && seen.insert(c.slug()).second)
                out.push_back(c);

            // Odometer increment, last axis fastest.
            if (axes.empty())
                break;
            std::size_t a = axes.size();
            bool wrapped = true;
            while (a > 0 && wrapped) {
                --a;
                if (++index[a] < axes[a]->values.size())
                    wrapped = false;
                else
                    index[a] = 0;
            }
            if (wrapped)
                break; // every relevant axis cycled: kind exhausted
        }
    }
    return out;
}

} // namespace cfl::search
