/**
 * @file
 * Adaptive design-space search over the content-addressed result
 * cache.
 *
 * One SearchDriver entry point (runSearch) dispatches between four
 * deterministic, seeded strategies:
 *
 *   exhaustive   every candidate, exact, one round — the reference
 *                the adaptive strategies are gated against;
 *   halving      successive halving: screening rounds on growing
 *                workload prefixes (sampled by default), an eta-fold
 *                elimination per rung, exact finals for the survivors;
 *   descent      coordinate descent over the axis lattice from an
 *                incumbent per kind (or --start), exact scoring, move
 *                on strict improvement only;
 *   fuzz         a scenario fuzzer sampling randomized (candidate,
 *                workload, sampling) points from replayable per-trial
 *                seeds, asserting codec round-trips and metric sanity
 *                on every point it evaluates.
 *
 * Every strategy is a pure function of (seed, space, scale, budget,
 * workloads) plus the bit-deterministic outcomes of the points it
 * requests, so its decision sequence — and therefore its journal — is
 * byte-identical across runs, cache states, and kill/resume cycles.
 * Points are evaluated through an Evaluator; the CachedEvaluator
 * implementation consults the ResultCache first and only simulates
 * misses, which is what makes re-screening a prefix-workload rung, a
 * warm re-run, or a resume free.
 */

#ifndef CFL_SEARCH_DRIVER_HH
#define CFL_SEARCH_DRIVER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "dispatch/result_cache.hh"
#include "search/journal.hh"
#include "search/pareto.hh"
#include "search/space.hh"
#include "sim/presets.hh"
#include "sim/sweep.hh"

namespace cfl::search
{

/** Everything a strategy's decision sequence depends on. */
struct SearchOptions
{
    std::string strategy; ///< "exhaustive"|"halving"|"descent"|"fuzz"
    DesignSpace space;
    std::vector<WorkloadId> workloads; ///< scoring set, in rung order
    RunScale scale;
    std::string scaleName = "default";
    std::string codeVersion; ///< journaled; part of every point key
    std::uint64_t seed = 1;
    /**
     * Point-request budget (0 = unlimited; fuzz defaults to 24
     * trials). Counted against *requested* evaluations — cache hits
     * included — so the same budget stops the same search at the same
     * record no matter how warm the cache is. halving/descent stop
     * issuing further screening rounds once the budget is consumed;
     * halving's exact final round always completes.
     */
    std::uint64_t budget = 0;
    bool sampledScreening = true; ///< halving rungs use SMARTS sampling
    unsigned eta = 4;       ///< halving elimination factor (>= 2)
    unsigned finalists = 2; ///< halving exact-final survivor count
    std::string startSlug;  ///< descent incumbent ("" = Table-1 per kind)
};

/** Point-evaluation backend a strategy talks to. */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /** Evaluate @p points, results in submission order. Duplicate
     *  submissions within one batch must be served from one
     *  evaluation. */
    virtual SweepResult
    evaluate(const std::vector<SweepPoint> &points) = 0;

    /** The content-addressed key of @p point (journaled by eval
     *  records). */
    virtual std::string pointKey(const SweepPoint &point) const = 0;

    /** Fresh simulations performed. */
    virtual std::uint64_t evaluatedPoints() const = 0;

    /** Points served from the result cache. */
    virtual std::uint64_t cachedPoints() const = 0;

    /** Distinct points requested per batch, summed over batches —
     *  cache-independent, the quantity budgets meter. */
    virtual std::uint64_t requestedPoints() const = 0;
};

/**
 * The production Evaluator: ResultCache lookups first (when a cache is
 * attached), fresh points through runTimingSweep on the shared engine,
 * fresh outcomes inserted and flushed after every batch so a killed
 * search loses at most the batch in flight.
 */
class CachedEvaluator : public Evaluator
{
  public:
    /** @param cache may be nullptr (no memoization, keys still
     *  computed against @p code_version). */
    CachedEvaluator(const SystemConfig &config, SweepEngine &engine,
                    dispatch::ResultCache *cache,
                    std::string code_version);

    SweepResult evaluate(const std::vector<SweepPoint> &points) override;
    std::string pointKey(const SweepPoint &point) const override;
    std::uint64_t evaluatedPoints() const override { return evaluated_; }
    std::uint64_t cachedPoints() const override { return cached_; }
    std::uint64_t requestedPoints() const override { return requested_; }

  private:
    SystemConfig config_;
    SweepEngine &engine_;
    dispatch::ResultCache *cache_;
    std::string codeVersion_;
    std::uint64_t evaluated_ = 0;
    std::uint64_t cached_ = 0;
    std::uint64_t requested_ = 0;
};

/** What a finished (or stopped) search hands back. */
struct SearchReport
{
    /** Candidates holding final scores (exact for every strategy but
     *  fuzz, whose trials score their own sampled workload). */
    std::vector<ScoredCandidate> scored;
    std::vector<std::size_t> front; ///< indices into scored
    std::string best;               ///< best candidate's slug
    double bestScore = 0.0;
    SearchCost bestCost;
    std::uint64_t rounds = 0;
    /** Non-empty when the fuzzer found a property violation; the
     *  search stopped at violationTrial and emitted a "reject"
     *  decision. Replaying --strategy fuzz with the same seed and
     *  space reproduces the identical failing point. */
    std::string violation;
    std::uint64_t violationTrial = 0;
};

/** Run @p opts.strategy to completion, journaling every step. */
SearchReport runSearch(const SearchOptions &opts, Evaluator &eval,
                       SearchJournal &journal);

/**
 * The fuzzer's trial generator, exposed for seed-replay tests: the
 * point of trial @p trial is a pure function of (space, scale, seed,
 * trial) — workload, geometry, and sampling stream all derive from
 * the trial's own Rng.
 */
SweepPoint fuzzerTrialPoint(const DesignSpace &space,
                            const RunScale &scale, std::uint64_t seed,
                            std::uint64_t trial);

/** The candidate a fuzzer trial point belongs to. */
Candidate fuzzerTrialCandidate(const DesignSpace &space,
                               std::uint64_t seed, std::uint64_t trial);

} // namespace cfl::search

#endif // CFL_SEARCH_DRIVER_HH
