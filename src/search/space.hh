/**
 * @file
 * Declarative design-space grammar for the adaptive search.
 *
 * A space is a set of frontend kinds crossed with geometry axes that
 * map onto DesignOverlay fields:
 *
 *   kinds=fdp,two_level_shift,confluence;btb_entries=512,1024,2048;
 *   l2_entries=8192,16384;shift_history=16384,32768
 *
 * Entries are ';'-separated `name=v1,v2,...` lists; `kinds` is
 * mandatory and every other name must come from the fixed axis
 * vocabulary below. Axes irrelevant to a kind (air_bundles for an FDP
 * point, say) are masked to "unset" for that kind, so the enumeration
 * never produces two candidates whose simulated configuration is
 * identical but whose overlays (and cache keys) differ. Candidates
 * whose geometry a structure would reject (non-power-of-two sets,
 * entries not divisible by ways) are filtered deterministically.
 *
 * Axis vocabulary, in canonical order:
 *
 *   btb_entries, btb_ways        conventional BTB (baseline, fdp,
 *                                ideal_btb_shift)
 *   l2_entries                   two-level backing BTB
 *   air_bundles, air_branch_entries, air_overflow_entries
 *                                AirBTB (confluence)
 *   shift_history, shift_stream_depth
 *                                SHIFT (every usesShift kind)
 */

#ifndef CFL_SEARCH_SPACE_HH
#define CFL_SEARCH_SPACE_HH

#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace cfl::search
{

/** One geometry axis: a vocabulary name plus candidate values. */
struct Axis
{
    std::string name;
    std::vector<std::uint64_t> values;
};

/** A parsed design space. */
struct DesignSpace
{
    std::vector<FrontendKind> kinds;
    std::vector<Axis> axes; ///< in canonical vocabulary order

    /** Parse the grammar above; fatal() on malformed specs. */
    static DesignSpace parse(const std::string &spec);

    /** Canonical spec text: parse(encode()) == *this, and equal spaces
     *  encode to equal bytes (the journal header pins this). */
    std::string encode() const;
};

/** The axis vocabulary in canonical order. */
const std::vector<std::string> &axisVocabulary();

/** Whether @p axis affects a structure @p kind instantiates. */
bool axisRelevant(const std::string &axis, FrontendKind kind);

/** One design candidate: a kind plus a kind-masked overlay. */
struct Candidate
{
    FrontendKind kind = FrontendKind::Baseline;
    DesignOverlay overlay = {};

    /** Stable id: "<kind-slug>" for the Table-1 geometry, else
     *  "<kind-slug>+axis=value+..." in canonical axis order. */
    std::string slug() const;

    bool operator==(const Candidate &) const = default;
};

/** Parse a slug produced by Candidate::slug(); fatal() on anything
 *  else (unknown kind, unknown axis, zero value). */
Candidate candidateFromSlug(const std::string &slug);

/** Overlay field for @p axis; fatal() on an unknown name. */
std::uint64_t &overlayField(DesignOverlay &overlay,
                            const std::string &axis);

/**
 * All distinct, structurally valid candidates of @p space: kinds in
 * spec order, axis values in spec order (kind-major cross product),
 * masked, deduplicated, and geometry-filtered. Deterministic.
 */
std::vector<Candidate> enumerateCandidates(const DesignSpace &space);

/** Whether the overlaid configuration passes every structural
 *  constraint @p kind's build would assert on. */
bool validCandidate(const Candidate &candidate);

} // namespace cfl::search

#endif // CFL_SEARCH_SPACE_HH
