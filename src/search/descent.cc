/**
 * @file
 * Coordinate descent over the axis lattice.
 *
 * Each kind in the space (or the single --start candidate) seeds an
 * incumbent. A pass scores every lattice neighbor of the incumbent —
 * one relevant axis stepped one position up or down, where position 0
 * is "unset" (the Table-1 default) and positions 1..n are the axis's
 * value list — exactly, on the full workload set. The incumbent moves
 * to the best neighbor only on a *strict* score improvement (ties
 * never move), so the walk terminates and revisits nothing; every
 * evaluation en route is memoized by the result cache anyway. All
 * exactly-scored candidates feed the final Pareto front, so descent
 * surfaces the frontier it walked past, not just where it stopped.
 */

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "search/strategies.hh"

namespace cfl::search::detail
{

namespace
{

/** Lattice position of @p candidate on each space axis relevant to
 *  its kind: 0 = unset, 1..n = index into the axis values + 1.
 *  fatal() if a set field is not on the axis (foreign --start). */
std::vector<std::size_t>
latticePosition(const DesignSpace &space, const Candidate &candidate)
{
    std::vector<std::size_t> pos;
    DesignOverlay overlay = candidate.overlay;
    for (const Axis &axis : space.axes) {
        if (!axisRelevant(axis.name, candidate.kind))
            continue;
        const std::uint64_t value = overlayField(overlay, axis.name);
        if (value == 0) {
            pos.push_back(0);
            continue;
        }
        const auto it =
            std::find(axis.values.begin(), axis.values.end(), value);
        if (it == axis.values.end())
            cfl_fatal("start candidate value %llu is not on axis "
                      "\"%s\" of this space",
                      static_cast<unsigned long long>(value),
                      axis.name.c_str());
        pos.push_back(
            static_cast<std::size_t>(it - axis.values.begin()) + 1);
    }
    return pos;
}

Candidate
candidateAt(const DesignSpace &space, FrontendKind kind,
            const std::vector<std::size_t> &pos)
{
    Candidate c;
    c.kind = kind;
    std::size_t i = 0;
    for (const Axis &axis : space.axes) {
        if (!axisRelevant(axis.name, kind))
            continue;
        if (pos[i] > 0)
            overlayField(c.overlay, axis.name) = axis.values[pos[i] - 1];
        ++i;
    }
    return c;
}

} // namespace

SearchReport
runDescent(StrategyContext &ctx)
{
    const SearchOptions &opts = ctx.opts;
    const std::size_t W = opts.workloads.size();

    std::vector<Candidate> starts;
    if (!opts.startSlug.empty()) {
        Candidate start = candidateFromSlug(opts.startSlug);
        if (!validCandidate(start))
            cfl_fatal("start candidate \"%s\" is structurally invalid",
                      opts.startSlug.c_str());
        starts.push_back(start);
    } else {
        // One Table-1 incumbent per kind in the space.
        for (const FrontendKind kind : opts.space.kinds)
            starts.push_back(Candidate{kind, {}});
    }

    // slug -> exact score, accumulated across all rounds for the front.
    std::map<std::string, ScoredCandidate> scoredBySlug;
    const auto record = [&](const Candidate &c, double score) {
        scoredBySlug.insert_or_assign(
            c.slug(), ScoredCandidate{c, score, candidateCost(c)});
    };

    for (const Candidate &start : starts) {
        const std::uint64_t startRound = ctx.round;
        const double startScore =
            ctx.scoreRound({start}, W, /*sampled=*/false)[0];
        ctx.emitDecision(startRound, start, "start", startScore,
                         candidateCost(start));
        record(start, startScore);

        Candidate incumbent = start;
        double incumbentScore = startScore;
        std::vector<std::size_t> pos =
            latticePosition(opts.space, incumbent);

        bool improved = true;
        while (improved && !pos.empty() && !ctx.budgetExhausted()) {
            improved = false;

            // Deterministic neighbor list: axis order, down then up.
            std::vector<Candidate> neighbors;
            for (std::size_t a = 0; a < pos.size(); ++a) {
                std::size_t axisIdx = 0, seen = 0;
                for (std::size_t s = 0; s < opts.space.axes.size(); ++s)
                    if (axisRelevant(opts.space.axes[s].name,
                                     incumbent.kind) &&
                        seen++ == a)
                        axisIdx = s;
                const std::size_t top =
                    opts.space.axes[axisIdx].values.size();
                for (const int step : {-1, +1}) {
                    if (step < 0 && pos[a] == 0)
                        continue;
                    if (step > 0 && pos[a] == top)
                        continue;
                    std::vector<std::size_t> np = pos;
                    np[a] += step;
                    const Candidate n =
                        candidateAt(opts.space, incumbent.kind, np);
                    if (validCandidate(n))
                        neighbors.push_back(n);
                }
            }
            if (neighbors.empty())
                break;

            const std::uint64_t thisRound = ctx.round;
            const std::vector<double> scores =
                ctx.scoreRound(neighbors, W, /*sampled=*/false);
            for (std::size_t i = 0; i < neighbors.size(); ++i) {
                ctx.emitDecision(thisRound, neighbors[i], "screen",
                                 scores[i],
                                 candidateCost(neighbors[i]));
                record(neighbors[i], scores[i]);
            }

            std::size_t best = 0;
            for (std::size_t i = 1; i < neighbors.size(); ++i)
                if (scores[i] > scores[best] ||
                    (scores[i] == scores[best] &&
                     neighbors[i].slug() < neighbors[best].slug()))
                    best = i;

            if (scores[best] > incumbentScore) {
                incumbent = neighbors[best];
                incumbentScore = scores[best];
                pos = latticePosition(opts.space, incumbent);
                ctx.emitDecision(thisRound, incumbent, "move",
                                 incumbentScore,
                                 candidateCost(incumbent));
                improved = true;
            } else {
                ctx.emitDecision(thisRound, incumbent, "stay",
                                 incumbentScore,
                                 candidateCost(incumbent));
            }
        }
    }

    std::vector<ScoredCandidate> scored;
    scored.reserve(scoredBySlug.size());
    for (auto &[slug, s] : scoredBySlug)
        scored.push_back(std::move(s));
    return ctx.finish(std::move(scored));
}

} // namespace cfl::search::detail
