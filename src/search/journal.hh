/**
 * @file
 * Append-only search journal with lossless resume.
 *
 * Every strategy is a deterministic function of (seed, space, scale,
 * budget, evaluated outcomes), and outcomes themselves are
 * bit-deterministic (and memoized in the result cache), so the journal
 * does not need to be a checkpoint the search *loads state from* — it
 * is a transcript the search *re-derives and verifies*. Resume simply
 * re-runs the strategy: emit() compares each regenerated line against
 * the loaded prefix byte-for-byte and only appends past it. Points
 * already evaluated before the kill hit the result cache, so the
 * replay costs no simulation.
 *
 * A mismatch between a regenerated line and the journal (different
 * CLI arguments, a different binary, or a mid-file corruption the
 * tolerant loader skipped over) is deterministic corruption: the
 * journal cannot have been produced by this search. That exits with
 * kSearchExitJournalConflict, the same "corrupt input" exit-code
 * convention confluence_sweep uses.
 *
 * Each append passes the fault checkpoint "search.journal.append", so
 * a fault plan can kill the search deterministically after N records —
 * CI's resume-after-SIGKILL gate is built on exactly that.
 */

#ifndef CFL_SEARCH_JOURNAL_HH
#define CFL_SEARCH_JOURNAL_HH

#include <string>
#include <vector>

#include "sweepio/search_codec.hh"

namespace cfl::search
{

/** Exit code of a journal/replay mismatch (deterministic corruption —
 *  retrying cannot help), matching the sweep tool's convention. */
constexpr int kSearchExitJournalConflict = 3;

class SearchJournal
{
  public:
    /**
     * Open the journal at @p path. With @p resume the existing
     * records (if any) become the verification prefix; without it a
     * non-empty journal is refused via fatal() — clobbering a previous
     * search by accident must not be silent.
     */
    SearchJournal(std::string path, bool resume);
    ~SearchJournal();

    SearchJournal(const SearchJournal &) = delete;
    SearchJournal &operator=(const SearchJournal &) = delete;

    /**
     * Record one search step. Within the loaded prefix the encoded
     * record must equal the stored line byte-for-byte (else stderr +
     * exit kSearchExitJournalConflict); past it the line is appended
     * and fsync-free flushed (an append that cannot be written is
     * fatal — the journal is the durability artifact).
     */
    void emit(const sweepio::SearchRecord &record);

    /** Records loaded from an existing journal at open. */
    const std::vector<sweepio::SearchRecord> &loaded() const
    {
        return loaded_;
    }

    /** How many emitted records were satisfied by the loaded prefix
     *  (i.e. replayed rather than appended). */
    std::size_t replayed() const { return replayed_; }

    /** Records appended (emitted past the loaded prefix). */
    std::size_t appended() const { return appended_; }

    /**
     * Called once the search completes: leftover loaded records beyond
     * the replay cursor mean the journal belongs to a *longer* run
     * (e.g. a resume with a smaller budget) — also a conflict.
     */
    void finish();

  private:
    std::string path_;
    std::vector<sweepio::SearchRecord> loaded_;
    std::vector<std::string> loadedLines_;
    std::size_t cursor_ = 0;
    std::size_t replayed_ = 0;
    std::size_t appended_ = 0;
    int fd_ = -1; ///< append descriptor, opened on first append

    [[noreturn]] void conflict(const std::string &why) const;
};

} // namespace cfl::search

#endif // CFL_SEARCH_JOURNAL_HH
