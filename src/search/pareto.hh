/**
 * @file
 * Pareto-front bookkeeping over scored search candidates.
 *
 * The search ranks candidates on two objectives: geomean IPC speedup
 * over Baseline (maximize) and dedicated front-end storage from the
 * area model (minimize). A candidate is dominated when another one is
 * at least as good on both objectives and strictly better on one.
 */

#ifndef CFL_SEARCH_PARETO_HH
#define CFL_SEARCH_PARETO_HH

#include <cstddef>
#include <string>
#include <vector>

#include "search/space.hh"

namespace cfl::search
{

/** Storage cost of one candidate (area_model totals). */
struct SearchCost
{
    double kiloBytes = 0.0; ///< dedicated SRAM KB
    double mm2 = 0.0;       ///< dedicated area mm²
};

/** Dedicated-storage cost of @p candidate under its overlaid Table-1
 *  configuration (frontendStructures + summarizeStructures). */
SearchCost candidateCost(const Candidate &candidate);

/** One candidate with its final score and cost. */
struct ScoredCandidate
{
    Candidate candidate;
    double score = 0.0; ///< geomean speedup over Baseline
    SearchCost cost;
};

/**
 * Indices of the non-dominated members of @p scored, ordered by
 * (cost.kiloBytes asc, score desc, slug asc). Ties on both objectives
 * all stay on the front. Deterministic.
 */
std::vector<std::size_t>
paretoFront(const std::vector<ScoredCandidate> &scored);

/**
 * Index of the best member of @p scored: highest score, ties broken
 * by lower storage KB, then slug. fatal() on an empty vector.
 */
std::size_t bestScored(const std::vector<ScoredCandidate> &scored);

/** CSV of scored candidates ("candidate,kind,storage_kb,area_mm2,
 *  geomean_speedup,on_front"), front members marked. */
std::string paretoCsv(const std::vector<ScoredCandidate> &scored,
                      const std::vector<std::size_t> &front);

/** The same table as JSON (bit-exact doubles travel as *_bits). */
std::string paretoJson(const std::vector<ScoredCandidate> &scored,
                       const std::vector<std::size_t> &front);

} // namespace cfl::search

#endif // CFL_SEARCH_PARETO_HH
