/**
 * @file
 * Successive halving over the candidate grid.
 *
 * Rung r scores the surviving candidates on a prefix of the workload
 * list (1, 2, 4, ... workloads) — sampled by default, since screening
 * only needs rank order — and keeps the top ceil(n/eta). Because the
 * evaluator memoizes through the result cache, the next rung's longer
 * prefix re-pays nothing for the workloads already scored; only the
 * prefix growth and the shrinking survivor set cost fresh simulation.
 * The survivors of the last rung are re-scored exactly on the full
 * workload set, which is the ranking the report and Pareto front are
 * built from. That final round always completes even when the request
 * budget ran out mid-screening, so a budgeted run still ends with an
 * exact, usable answer.
 */

#include <algorithm>

#include "common/logging.hh"
#include "search/strategies.hh"

namespace cfl::search::detail
{

SearchReport
runHalving(StrategyContext &ctx)
{
    const SearchOptions &opts = ctx.opts;
    std::vector<Candidate> survivors = ctx.candidates;
    std::size_t rungWorkloads = 1;

    while (survivors.size() > opts.finalists && !ctx.budgetExhausted()) {
        const std::uint64_t thisRound = ctx.round;
        const std::vector<double> scores = ctx.scoreRound(
            survivors, rungWorkloads, opts.sampledScreening);

        std::vector<std::size_t> order(survivors.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b])
                          return scores[a] > scores[b];
                      const SearchCost ca = candidateCost(survivors[a]);
                      const SearchCost cb = candidateCost(survivors[b]);
                      if (ca.kiloBytes != cb.kiloBytes)
                          return ca.kiloBytes < cb.kiloBytes;
                      return survivors[a].slug() < survivors[b].slug();
                  });

        const std::size_t keep =
            std::max<std::size_t>(opts.finalists,
                                  (survivors.size() + opts.eta - 1) /
                                      opts.eta);
        cfl_assert(keep < survivors.size(),
                   "halving rung failed to shrink (%zu survivors)",
                   survivors.size());

        std::vector<bool> kept(survivors.size(), false);
        for (std::size_t r = 0; r < keep; ++r)
            kept[order[r]] = true;
        for (std::size_t i = 0; i < survivors.size(); ++i)
            ctx.emitDecision(thisRound, survivors[i],
                             kept[i] ? "keep" : "drop", scores[i],
                             candidateCost(survivors[i]));

        std::vector<Candidate> next;
        next.reserve(keep);
        for (std::size_t r = 0; r < keep; ++r)
            next.push_back(survivors[order[r]]);
        survivors = std::move(next);
        rungWorkloads =
            std::min(rungWorkloads * 2, opts.workloads.size());
    }

    // Exact finals over the full workload set.
    const std::uint64_t finalRound = ctx.round;
    const std::vector<double> finalScores = ctx.scoreRound(
        survivors, opts.workloads.size(), /*sampled=*/false);

    std::vector<ScoredCandidate> scored;
    scored.reserve(survivors.size());
    for (std::size_t i = 0; i < survivors.size(); ++i) {
        ScoredCandidate s{survivors[i], finalScores[i],
                          candidateCost(survivors[i])};
        ctx.emitDecision(finalRound, s.candidate, "final", s.score,
                         s.cost);
        scored.push_back(std::move(s));
    }
    return ctx.finish(std::move(scored));
}

} // namespace cfl::search::detail
