/**
 * @file
 * Internals shared by the search strategies (not part of the public
 * API): the per-run context with scoring-round plumbing, and the
 * strategy entry points driver.cc dispatches to.
 */

#ifndef CFL_SEARCH_STRATEGIES_HH
#define CFL_SEARCH_STRATEGIES_HH

#include "search/driver.hh"

namespace cfl::search::detail
{

struct StrategyContext
{
    const SearchOptions &opts;
    Evaluator &eval;
    SearchJournal &journal;
    std::vector<Candidate> candidates; ///< enumerateCandidates(space)
    std::uint64_t round = 0;           ///< next round index

    /**
     * One scoring round: evaluate every @p scored candidate against
     * the first @p num_workloads workloads (plus the Baseline
     * normalization points), journal the round and eval records, and
     * return each candidate's geomean speedup in @p scored order.
     * Consumes one round index.
     */
    std::vector<double> scoreRound(const std::vector<Candidate> &scored,
                                   std::size_t num_workloads,
                                   bool sampled);

    /** The budget is consumed (never true with budget == 0). */
    bool budgetExhausted() const;

    /** Journal one decision for @p candidate in round @p in_round. */
    void emitDecision(std::uint64_t in_round, const Candidate &candidate,
                      const std::string &action, double score,
                      const SearchCost &cost);

    /**
     * Shared epilogue: compute the Pareto front of @p scored, journal
     * a "front" decision per member and the "done" record, verify the
     * journal is exhausted, and build the report.
     */
    SearchReport finish(std::vector<ScoredCandidate> scored);
};

SearchReport runExhaustive(StrategyContext &ctx);
SearchReport runHalving(StrategyContext &ctx);
SearchReport runDescent(StrategyContext &ctx);
SearchReport runFuzzer(StrategyContext &ctx);

} // namespace cfl::search::detail

#endif // CFL_SEARCH_STRATEGIES_HH
