/**
 * @file
 * Scenario fuzzer: randomized (candidate, workload, sampling) points
 * with replayable per-trial seeds.
 *
 * Trial t's point is a pure function of (space, scale, seed, t) — its
 * own splitmix-derived Rng picks the kind, rolls each relevant axis
 * (position 0 = leave the Table-1 default), re-rolling geometry the
 * structures would reject, then picks a workload, and flips a coin
 * for SMARTS sampling with a random rng stream. Each trial evaluates
 * the point and its Baseline twin, then asserts the invariants every
 * sweep consumer relies on: the point round-trips the sweepio codec
 * byte-identically, the outcome carries live counters (cores present,
 * cycles and retired instructions non-zero, positive IPC), sampled
 * outcomes carry valid estimators, and the speedup is positive and
 * finite. A violation stops the search with a "reject" decision and a
 * replay recipe: the same --seed re-derives the identical point, which
 * is exactly what the fuzzer seed-replay test pins.
 */

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "search/strategies.hh"
#include "sim/metrics.hh"
#include "sweepio/codec.hh"

namespace cfl::search
{

namespace
{

/** One trial's derivation, shared by the point/candidate accessors so
 *  they can never drift apart. */
struct TrialDraw
{
    Candidate candidate;
    WorkloadId workload = WorkloadId::OltpDb2;
    SamplingSpec sampling = {};
};

TrialDraw
drawTrial(const DesignSpace &space, const RunScale &scale,
          std::uint64_t seed, std::uint64_t trial)
{
    TrialDraw draw;
    Rng rng(hashCombine(seed, hashMix(trial + 0x51ee7ull)));

    draw.candidate.kind =
        space.kinds[rng.nextBelow(space.kinds.size())];

    // Roll the relevant axes; re-roll wholesale while the geometry is
    // structurally invalid (bounded, then fall back to Table-1, which
    // always builds).
    for (unsigned attempt = 0; attempt < 16; ++attempt) {
        DesignOverlay overlay;
        for (const Axis &axis : space.axes) {
            if (!axisRelevant(axis.name, draw.candidate.kind))
                continue;
            const std::uint64_t pick =
                rng.nextBelow(axis.values.size() + 1);
            if (pick > 0)
                overlayField(overlay, axis.name) =
                    axis.values[pick - 1];
        }
        draw.candidate.overlay = overlay;
        if (validCandidate(draw.candidate))
            break;
        draw.candidate.overlay = {};
    }

    const auto &workloads = allWorkloads();
    draw.workload = workloads[rng.nextBelow(workloads.size())];

    if (rng.nextBelow(2) == 1) {
        draw.sampling = defaultSamplingSpec(scale);
        draw.sampling.rngStream = 1 + rng.nextBelow(8);
    }
    return draw;
}

} // namespace

SweepPoint
fuzzerTrialPoint(const DesignSpace &space, const RunScale &scale,
                 std::uint64_t seed, std::uint64_t trial)
{
    const TrialDraw draw = drawTrial(space, scale, seed, trial);
    SweepPoint point;
    point.kind = draw.candidate.kind;
    point.workload = draw.workload;
    point.scale = scale;
    point.sampling = draw.sampling;
    point.overlay = draw.candidate.overlay;
    return point;
}

Candidate
fuzzerTrialCandidate(const DesignSpace &space, std::uint64_t seed,
                     std::uint64_t trial)
{
    // Scale only affects the sampling spec, never the candidate draw.
    return drawTrial(space, RunScale{}, seed, trial).candidate;
}

namespace detail
{

SearchReport
runFuzzer(StrategyContext &ctx)
{
    const SearchOptions &opts = ctx.opts;
    const std::uint64_t trials = opts.budget > 0 ? opts.budget : 24;

    std::vector<ScoredCandidate> scored;
    SearchReport stopped; // filled on violation

    for (std::uint64_t t = 0; t < trials; ++t) {
        const SweepPoint point =
            fuzzerTrialPoint(opts.space, opts.scale, opts.seed, t);
        const Candidate candidate =
            fuzzerTrialCandidate(opts.space, opts.seed, t);
        const SearchCost cost = candidateCost(candidate);

        sweepio::SearchRecord rr;
        rr.type = "round";
        rr.round = ctx.round++;
        ctx.journal.emit(rr);

        SweepPoint twin = point;
        twin.kind = FrontendKind::Baseline;
        twin.overlay = {};
        const SweepResult result = ctx.eval.evaluate({point, twin});

        const Candidate baseline{FrontendKind::Baseline, {}};
        const std::string slugs[2] = {candidate.slug(),
                                      baseline.slug()};
        for (std::size_t i = 0; i < 2; ++i) {
            sweepio::SearchRecord er;
            er.type = "eval";
            er.round = rr.round;
            er.candidate = slugs[i];
            er.pointKey = ctx.eval.pointKey(result.points[i].point);
            ctx.journal.emit(er);
        }

        // Property checks. Violations stop the run with a replayable
        // trial id rather than fatal()ing: the caller turns this into
        // a distinct exit code and a replay recipe.
        std::string violation;
        const std::string enc = sweepio::encodePoint(point);
        if (sweepio::encodePoint(sweepio::decodePoint(enc)) != enc)
            violation = "point does not round-trip the sweepio codec: " +
                        enc;
        for (std::size_t i = 0; i < 2 && violation.empty(); ++i) {
            const CmpMetrics &m = result.points[i].metrics;
            if (m.cores.empty())
                violation = "outcome has no core counters";
            else if (m.cores[0].cycles == 0 || m.cores[0].retired == 0)
                violation = "outcome has dead counters (cycles or "
                            "retired == 0)";
            else if (!(m.meanIpc() > 0.0))
                violation = "outcome IPC is not positive";
            else if (result.points[i].point.sampling.enabled() &&
                     !m.sampling.valid())
                violation = "sampled outcome carries no valid "
                            "estimators";
        }
        double score = 0.0;
        if (violation.empty()) {
            score = speedup(result.points[0].metrics.meanIpc(),
                            result.points[1].metrics.meanIpc());
            if (!std::isfinite(score) || score <= 0.0)
                violation = "speedup is not positive and finite";
        }

        if (!violation.empty()) {
            ctx.emitDecision(rr.round, candidate, "reject", 0.0, cost);
            stopped.scored = std::move(scored);
            stopped.rounds = ctx.round;
            stopped.violation = violation + " (point " + enc + ")";
            stopped.violationTrial = t;
            return stopped;
        }

        ctx.emitDecision(rr.round, candidate, "accept", score, cost);
        scored.push_back(ScoredCandidate{candidate, score, cost});
    }

    // Per-trial scores mix workloads and sampling modes, so the
    // "front" here is indicative, not an exact-scored frontier; the
    // fuzzer's job is property coverage, not optimization.
    return ctx.finish(std::move(scored));
}

} // namespace detail

} // namespace cfl::search
