#include "search/pareto.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "sim/presets.hh"
#include "sweepio/codec.hh"

namespace cfl::search
{

SearchCost
candidateCost(const Candidate &candidate)
{
    // Core count is irrelevant to the inventory (CMP-wide structures
    // amortize over areaAmortizationCores, fixed at the paper's 16).
    SystemConfig cfg = makeSystemConfig(1);
    candidate.overlay.applyTo(cfg);
    const StorageSummary sum =
        summarizeStructures(frontendStructures(candidate.kind, cfg));
    return {sum.dedicatedKiloBytes, sum.dedicatedMm2};
}

namespace
{

bool
dominates(const ScoredCandidate &a, const ScoredCandidate &b)
{
    const bool geq = a.score >= b.score && a.cost.kiloBytes <= b.cost.kiloBytes;
    const bool strict =
        a.score > b.score || a.cost.kiloBytes < b.cost.kiloBytes;
    return geq && strict;
}

} // namespace

std::vector<std::size_t>
paretoFront(const std::vector<ScoredCandidate> &scored)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < scored.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < scored.size() && !dominated; ++j)
            if (j != i && dominates(scored[j], scored[i]))
                dominated = true;
        if (!dominated)
            front.push_back(i);
    }
    std::sort(front.begin(), front.end(),
              [&](std::size_t a, std::size_t b) {
                  if (scored[a].cost.kiloBytes != scored[b].cost.kiloBytes)
                      return scored[a].cost.kiloBytes <
                             scored[b].cost.kiloBytes;
                  if (scored[a].score != scored[b].score)
                      return scored[a].score > scored[b].score;
                  return scored[a].candidate.slug() <
                         scored[b].candidate.slug();
              });
    return front;
}

std::size_t
bestScored(const std::vector<ScoredCandidate> &scored)
{
    cfl_assert(!scored.empty(), "no scored candidates");
    std::size_t best = 0;
    for (std::size_t i = 1; i < scored.size(); ++i) {
        const ScoredCandidate &a = scored[i];
        const ScoredCandidate &b = scored[best];
        if (a.score > b.score ||
            (a.score == b.score &&
             (a.cost.kiloBytes < b.cost.kiloBytes ||
              (a.cost.kiloBytes == b.cost.kiloBytes &&
               a.candidate.slug() < b.candidate.slug()))))
            best = i;
    }
    return best;
}

std::string
paretoCsv(const std::vector<ScoredCandidate> &scored,
          const std::vector<std::size_t> &front)
{
    std::vector<bool> onFront(scored.size(), false);
    for (const std::size_t i : front)
        onFront[i] = true;
    std::ostringstream out;
    out << "candidate,kind,storage_kb,area_mm2,geomean_speedup,on_front\n";
    out.precision(17);
    for (std::size_t i = 0; i < scored.size(); ++i) {
        const ScoredCandidate &s = scored[i];
        out << s.candidate.slug() << ","
            << frontendKindSlug(s.candidate.kind) << ","
            << s.cost.kiloBytes << "," << s.cost.mm2 << "," << s.score
            << "," << (onFront[i] ? 1 : 0) << "\n";
    }
    return out.str();
}

std::string
paretoJson(const std::vector<ScoredCandidate> &scored,
           const std::vector<std::size_t> &front)
{
    std::vector<bool> onFront(scored.size(), false);
    for (const std::size_t i : front)
        onFront[i] = true;
    std::ostringstream out;
    out << "{\"candidates\":[";
    for (std::size_t i = 0; i < scored.size(); ++i) {
        const ScoredCandidate &s = scored[i];
        if (i > 0)
            out << ",";
        out << "{\"candidate\":\"" << s.candidate.slug()
            << "\",\"kind\":\"" << frontendKindSlug(s.candidate.kind)
            << "\",\"storage_kb_bits\":"
            << sweepio::doubleBits(s.cost.kiloBytes)
            << ",\"area_mm2_bits\":" << sweepio::doubleBits(s.cost.mm2)
            << ",\"score_bits\":" << sweepio::doubleBits(s.score)
            << ",\"on_front\":" << (onFront[i] ? "true" : "false")
            << "}";
    }
    out << "]}\n";
    return out.str();
}

} // namespace cfl::search
