#include "search/driver.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "search/strategies.hh"
#include "sim/metrics.hh"
#include "sweepio/codec.hh"
#include "sweepio/digest.hh"

namespace cfl::search
{

// ---------------------------------------------------------------------------
// CachedEvaluator
// ---------------------------------------------------------------------------

CachedEvaluator::CachedEvaluator(const SystemConfig &config,
                                 SweepEngine &engine,
                                 dispatch::ResultCache *cache,
                                 std::string code_version)
    : config_(config), engine_(engine), cache_(cache),
      codeVersion_(std::move(code_version))
{
}

std::string
CachedEvaluator::pointKey(const SweepPoint &point) const
{
    const std::uint64_t seed = sweepPointSeed(point.kind, point.workload);
    if (cache_ != nullptr)
        return cache_->key(point, seed);
    return sweepio::pointDigest(point, seed, codeVersion_);
}

SweepResult
CachedEvaluator::evaluate(const std::vector<SweepPoint> &points)
{
    SweepResult out;
    out.points.resize(points.size());

    std::unordered_map<std::string, std::size_t> firstOf;
    std::vector<std::pair<std::size_t, std::size_t>> aliases;
    std::vector<SweepPoint> fresh;
    std::vector<std::size_t> freshIdx;

    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        const std::string enc = sweepio::encodePoint(p);
        const auto [it, inserted] = firstOf.emplace(enc, i);
        if (!inserted) {
            aliases.emplace_back(i, it->second);
            continue;
        }
        ++requested_;
        const std::uint64_t seed = sweepPointSeed(p.kind, p.workload);
        if (cache_ != nullptr) {
            if (const SweepOutcome *hit = cache_->lookup(p, seed)) {
                out.points[i] = *hit;
                ++cached_;
                continue;
            }
        }
        fresh.push_back(p);
        freshIdx.push_back(i);
    }

    if (!fresh.empty()) {
        SweepResult batch = runTimingSweep(fresh, config_, engine_);
        evaluated_ += fresh.size();
        for (std::size_t k = 0; k < freshIdx.size(); ++k) {
            if (cache_ != nullptr)
                cache_->insert(batch.points[k]);
            out.points[freshIdx[k]] = std::move(batch.points[k]);
        }
        // One flush per batch: a kill loses at most the batch in
        // flight, and nothing already flushed is ever re-simulated.
        if (cache_ != nullptr)
            cache_->flush();
    }

    for (const auto &[i, first] : aliases)
        out.points[i] = out.points[first];
    return out;
}

// ---------------------------------------------------------------------------
// Shared strategy plumbing
// ---------------------------------------------------------------------------

namespace detail
{

namespace
{

SweepPoint
makePoint(const Candidate &candidate, WorkloadId workload,
          const SearchOptions &opts, bool sampled)
{
    SweepPoint point;
    point.kind = candidate.kind;
    point.workload = workload;
    point.scale = opts.scale;
    if (sampled)
        point.sampling = defaultSamplingSpec(opts.scale);
    point.overlay = candidate.overlay;
    return point;
}

} // namespace

bool
StrategyContext::budgetExhausted() const
{
    return opts.budget > 0 && eval.requestedPoints() >= opts.budget;
}

void
StrategyContext::emitDecision(std::uint64_t in_round,
                              const Candidate &candidate,
                              const std::string &action, double score,
                              const SearchCost &cost)
{
    sweepio::SearchRecord r;
    r.type = "decision";
    r.round = in_round;
    r.candidate = candidate.slug();
    r.action = action;
    r.scoreBits = sweepio::doubleBits(score);
    r.costKbBits = sweepio::doubleBits(cost.kiloBytes);
    r.costMm2Bits = sweepio::doubleBits(cost.mm2);
    journal.emit(r);
}

std::vector<double>
StrategyContext::scoreRound(const std::vector<Candidate> &scored,
                            std::size_t num_workloads, bool sampled)
{
    cfl_assert(num_workloads >= 1 &&
                   num_workloads <= opts.workloads.size(),
               "bad rung size %zu", num_workloads);
    const std::uint64_t thisRound = round++;

    sweepio::SearchRecord rr;
    rr.type = "round";
    rr.round = thisRound;
    journal.emit(rr);

    // Candidate points first (candidate-major, workload order), then
    // whichever Baseline normalization points are not already present.
    const Candidate baseline{FrontendKind::Baseline, {}};
    std::vector<SweepPoint> points;
    std::vector<std::string> slugs; // eval-record label per point
    points.reserve((scored.size() + 1) * num_workloads);
    for (const Candidate &c : scored) {
        for (std::size_t w = 0; w < num_workloads; ++w) {
            points.push_back(
                makePoint(c, opts.workloads[w], opts, sampled));
            slugs.push_back(c.slug());
        }
    }
    const bool haveBaseline =
        std::find_if(scored.begin(), scored.end(),
                     [&](const Candidate &c) { return c == baseline; }) !=
        scored.end();
    const std::size_t baseBegin = haveBaseline ? 0 : points.size();
    if (!haveBaseline) {
        for (std::size_t w = 0; w < num_workloads; ++w) {
            points.push_back(
                makePoint(baseline, opts.workloads[w], opts, sampled));
            slugs.push_back(baseline.slug());
        }
    }

    const SweepResult result = eval.evaluate(points);

    for (std::size_t i = 0; i < points.size(); ++i) {
        sweepio::SearchRecord er;
        er.type = "eval";
        er.round = thisRound;
        er.candidate = slugs[i];
        er.pointKey = eval.pointKey(points[i]);
        journal.emit(er);
    }

    // Baseline IPC per rung workload.
    std::vector<double> baseIpc(num_workloads);
    if (haveBaseline) {
        const std::size_t at =
            static_cast<std::size_t>(
                std::find_if(scored.begin(), scored.end(),
                             [&](const Candidate &c) {
                                 return c == baseline;
                             }) -
                scored.begin()) *
            num_workloads;
        for (std::size_t w = 0; w < num_workloads; ++w)
            baseIpc[w] = result.points[at + w].metrics.meanIpc();
    } else {
        for (std::size_t w = 0; w < num_workloads; ++w)
            baseIpc[w] = result.points[baseBegin + w].metrics.meanIpc();
    }

    std::vector<double> scores(scored.size());
    for (std::size_t c = 0; c < scored.size(); ++c) {
        std::vector<double> perWl(num_workloads);
        for (std::size_t w = 0; w < num_workloads; ++w)
            perWl[w] = speedup(
                result.points[c * num_workloads + w].metrics.meanIpc(),
                baseIpc[w]);
        scores[c] = geomean(perWl);
    }
    return scores;
}

SearchReport
StrategyContext::finish(std::vector<ScoredCandidate> scored)
{
    SearchReport report;
    report.scored = std::move(scored);
    report.front = paretoFront(report.scored);
    report.rounds = round;

    for (const std::size_t i : report.front)
        emitDecision(round == 0 ? 0 : round - 1,
                     report.scored[i].candidate, "front",
                     report.scored[i].score, report.scored[i].cost);

    const std::size_t best = bestScored(report.scored);
    report.best = report.scored[best].candidate.slug();
    report.bestScore = report.scored[best].score;
    report.bestCost = report.scored[best].cost;

    sweepio::SearchRecord done;
    done.type = "done";
    done.round = round;
    done.candidate = report.best;
    done.scoreBits = sweepio::doubleBits(report.bestScore);
    done.costKbBits = sweepio::doubleBits(report.bestCost.kiloBytes);
    done.costMm2Bits = sweepio::doubleBits(report.bestCost.mm2);
    journal.emit(done);
    journal.finish();
    return report;
}

// ---------------------------------------------------------------------------
// Exhaustive reference strategy
// ---------------------------------------------------------------------------

SearchReport
runExhaustive(StrategyContext &ctx)
{
    const std::uint64_t thisRound = ctx.round;
    const std::vector<double> scores = ctx.scoreRound(
        ctx.candidates, ctx.opts.workloads.size(), /*sampled=*/false);

    std::vector<ScoredCandidate> scored;
    scored.reserve(ctx.candidates.size());
    for (std::size_t i = 0; i < ctx.candidates.size(); ++i) {
        ScoredCandidate s{ctx.candidates[i], scores[i],
                          candidateCost(ctx.candidates[i])};
        ctx.emitDecision(thisRound, s.candidate, "final", s.score,
                         s.cost);
        scored.push_back(std::move(s));
    }
    return ctx.finish(std::move(scored));
}

} // namespace detail

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

SearchReport
runSearch(const SearchOptions &opts, Evaluator &eval,
          SearchJournal &journal)
{
    cfl_assert(!opts.workloads.empty(), "search needs >= 1 workload");
    cfl_assert(opts.eta >= 2, "halving eta must be >= 2");
    cfl_assert(opts.finalists >= 1, "halving needs >= 1 finalist");

    detail::StrategyContext ctx{opts, eval, journal,
                                enumerateCandidates(opts.space)};
    if (ctx.candidates.empty())
        cfl_fatal("design space \"%s\" enumerates no valid candidates",
                  opts.space.encode().c_str());

    sweepio::SearchRecord header;
    header.type = "header";
    header.strategy = opts.strategy;
    header.seed = opts.seed;
    header.space = opts.space.encode();
    header.scaleName = opts.scaleName;
    header.budget = opts.budget;
    header.codeVersion = opts.codeVersion;
    journal.emit(header);

    if (opts.strategy == "exhaustive")
        return detail::runExhaustive(ctx);
    if (opts.strategy == "halving")
        return detail::runHalving(ctx);
    if (opts.strategy == "descent")
        return detail::runDescent(ctx);
    if (opts.strategy == "fuzz")
        return detail::runFuzzer(ctx);
    cfl_fatal("unknown search strategy \"%s\" (want exhaustive, "
              "halving, descent, or fuzz)",
              opts.strategy.c_str());
}

} // namespace cfl::search
