#include "search/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "fault/fault.hh"

namespace cfl::search
{

SearchJournal::SearchJournal(std::string path, bool resume)
    : path_(std::move(path))
{
    loaded_ = sweepio::readSearchJournal(path_, &loadedLines_);
    if (!resume && !loaded_.empty())
        cfl_fatal("journal \"%s\" already holds %zu records; pass "
                  "--resume to continue it (or point --journal at a "
                  "fresh path)",
                  path_.c_str(), loaded_.size());
}

SearchJournal::~SearchJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SearchJournal::conflict(const std::string &why) const
{
    std::fprintf(stderr,
                 "confluence_search: journal conflict in \"%s\": %s\n",
                 path_.c_str(), why.c_str());
    std::exit(kSearchExitJournalConflict);
}

void
SearchJournal::emit(const sweepio::SearchRecord &record)
{
    const std::string line = sweepio::encodeSearchRecord(record);
    if (cursor_ < loadedLines_.size()) {
        if (line != loadedLines_[cursor_])
            conflict("record " + std::to_string(cursor_) +
                     " diverges from the replayed search\n  journal: " +
                     loadedLines_[cursor_] + "\n  replay:  " + line);
        ++cursor_;
        ++replayed_;
        return;
    }

    // Deterministic death point for kill/resume tests and CI.
    fault::checkpoint("search.journal.append");

    if (fd_ < 0) {
        fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
        if (fd_ < 0)
            cfl_fatal("cannot open journal \"%s\" for append: %s",
                      path_.c_str(), std::strerror(errno));
        // A torn append leaves a partial line after the loaded prefix;
        // appending behind it would corrupt the journal. Verify the
        // decodable records are a byte prefix of the file, then drop
        // the tail so the resumed run continues on a clean boundary.
        std::string prefix;
        for (const std::string &stored : loadedLines_)
            prefix += stored + "\n";
        const off_t size = ::lseek(fd_, 0, SEEK_END);
        if (size < 0 || static_cast<std::size_t>(size) < prefix.size())
            conflict("journal shrank underneath the loader");
        std::string head(prefix.size(), '\0');
        if (::pread(fd_, head.data(), head.size(), 0) !=
                static_cast<ssize_t>(head.size()) ||
            head != prefix)
            conflict("undecodable bytes interleave the journal's "
                     "records (not a torn tail); refusing to rewrite "
                     "history");
        if (static_cast<std::size_t>(size) > prefix.size() &&
            ::ftruncate(fd_, static_cast<off_t>(prefix.size())) != 0)
            cfl_fatal("cannot drop torn tail of journal \"%s\": %s",
                      path_.c_str(), std::strerror(errno));
        if (::lseek(fd_, 0, SEEK_END) < 0)
            cfl_fatal("cannot seek journal \"%s\": %s", path_.c_str(),
                      std::strerror(errno));
    }
    const std::string out = line + "\n";
    const ssize_t n = ::write(fd_, out.data(), out.size());
    if (n != static_cast<ssize_t>(out.size()))
        cfl_fatal("short write appending to journal \"%s\": %s",
                  path_.c_str(),
                  n < 0 ? std::strerror(errno) : "short write");
    ++cursor_;
    ++appended_;
}

void
SearchJournal::finish()
{
    if (cursor_ < loadedLines_.size())
        conflict("journal holds " +
                 std::to_string(loadedLines_.size() - cursor_) +
                 " records beyond this search's end — it belongs to a "
                 "longer run (different budget or strategy?)");
}

} // namespace cfl::search
