#include "prefetch/fdp.hh"

#include <cmath>

namespace cfl
{

FdpPrefetcher::FdpPrefetcher(InstMemory &mem)
    : InstPrefetcher("prefetch.fdp"), mem_(mem), rng_(0xfd9)
{
}

void
FdpPrefetcher::onBranchOutcome(unsigned branches, unsigned errors)
{
    // Exponentially-decayed running estimate of the per-branch
    // prediction error rate (misfetch or mispredict per prediction).
    constexpr double kDecay = 1.0 / 4096.0;
    for (unsigned i = 0; i < branches; ++i) {
        const bool err = i < errors;
        errRate_ += kDecay * ((err ? 1.0 : 0.0) - errRate_);
    }
}

void
FdpPrefetcher::onFetchRegion(BlockRange blocks,
                             unsigned unresolved_branches, Cycle now)
{
    // FDP follows the *predicted* path. In a real front end the region
    // at speculation depth k is on the correct path only with probability
    // (1-e)^k, where e is the per-branch prediction error rate and k the
    // number of unresolved predictions ahead of it — "its miss rate
    // geometrically compounds, increasingly predicting the wrong-path
    // instructions" (Section 2.1). The oracle-resynchronized BPU model
    // cannot follow wrong paths, so FDP reconstructs that inaccuracy by
    // discarding prefetch opportunities with the compounded probability.
    // The draw happens unconditionally to keep the RNG sequence
    // independent of the branch below; at depth 0 the region is
    // certainly correct-path (p_correct == 1 and nextDouble() < 1
    // strictly), so the pow() is skipped without changing behaviour.
    const double u = rng_.nextDouble();
    if (unresolved_branches != 0) {
        const double p_correct = std::pow(
            1.0 - errRate_, static_cast<double>(unresolved_branches));
        if (u >= p_correct) {
            wrongPathSuppressedStat_->inc();
            return;
        }
    }

    for (const Addr block : blocks) {
        if (!mem_.residentOrInFlight(block)) {
            issuedStat_->inc();
            mem_.prefetch(block, now);
        }
    }
}

} // namespace cfl
