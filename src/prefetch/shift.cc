#include "prefetch/shift.hh"

#include "common/logging.hh"

namespace cfl
{

ShiftHistory::ShiftHistory(const ShiftParams &params)
    : params_(params),
      ring_(params.historyEntries, 0),
      index_(params.historyEntries / 4),
      recordedStat_(&stats_.scalar("recorded"))
{
    cfl_assert(params.historyEntries > 0, "history needs entries");
}

void
ShiftHistory::record(Addr block_addr)
{
    if (block_addr == lastRecorded_)
        return;  // consecutive duplicates carry no stream information
    lastRecorded_ = block_addr;

    ring_[head_ % ring_.size()] = block_addr;
    index_.assign(block_addr, head_);
    ++head_;
    recordedStat_->inc();

    // Keep the index table bounded: drop entries that fell out of the
    // circular buffer periodically (models index pointers aging out of
    // the LLC tag array).
    if (head_ % (ring_.size() * 4) == 0) {
        index_.retainIf([this](Addr, const std::uint64_t &pos) {
            return inReach(pos);
        });
    }
}

bool
ShiftHistory::inReach(std::uint64_t pos) const
{
    return pos < head_ && head_ - pos <= ring_.size();
}

std::optional<std::uint64_t>
ShiftHistory::lookup(Addr block_addr) const
{
    const std::uint64_t *pos = index_.find(block_addr);
    if (pos == nullptr || !inReach(*pos))
        return std::nullopt;
    return *pos;
}

Addr
ShiftHistory::at(std::uint64_t pos) const
{
    cfl_assert(inReach(pos), "history read out of reach");
    return ring_[pos % ring_.size()];
}

ShiftEngine::ShiftEngine(const ShiftParams &params, ShiftHistory &history,
                         InstMemory &mem, bool recorder)
    : InstPrefetcher("prefetch.shift"),
      params_(params),
      history_(history),
      mem_(mem),
      recorder_(recorder),
      outstanding_(params.streamDepth),
      issuedStat_(&stats_.scalar("issued")),
      issueRedundantStat_(&stats_.scalar("issueRedundant")),
      confirmedStat_(&stats_.scalar("confirmed")),
      streamLappedStat_(&stats_.scalar("streamLapped")),
      indexMissesStat_(&stats_.scalar("indexMisses")),
      redirectsStat_(&stats_.scalar("redirects"))
{
}

void
ShiftEngine::issueAhead(Cycle now, Cycle extra_latency, bool warm)
{
    unsigned issued = 0;
    while (outstanding_.size() < params_.streamDepth &&
           issued < params_.maxIssuePerEvent && cursor_ < history_.head()) {
        if (!history_.inReach(cursor_)) {
            // The writer lapped us; the stream is stale.
            active_ = false;
            streamLappedStat_->inc();
            return;
        }
        const Addr block = history_.at(cursor_++);
        if (outstanding_.contains(block))
            continue;
        outstanding_.push_back(block);
        if (warm) {
            mem_.warmPrefetch(block, now);
        } else if (!mem_.residentOrInFlight(block)) {
            issuedStat_->inc();
            mem_.prefetch(block, now, extra_latency);
        } else {
            issueRedundantStat_->inc();
        }
        ++issued;
    }
}

bool
ShiftEngine::confirm(Addr block_addr)
{
    if (!outstanding_.contains(block_addr))
        return false;
    // In-order-ish confirmation: retire predictions up to and including
    // the confirmed block (earlier ones were skipped by the fetch stream
    // but remain harmless prefetches).
    while (!outstanding_.empty()) {
        const Addr front = outstanding_.front();
        outstanding_.pop_front();
        if (front == block_addr)
            break;
    }
    confirmedStat_->inc();
    return true;
}

void
ShiftEngine::onDemandAccess(Addr block_addr, Cycle now)
{
    if (recorder_)
        history_.record(block_addr);

    if (active_ && confirm(block_addr)) {
        // Streaming: history reads are pipelined ahead, no extra latency.
        issueAhead(now, 0);
    }
}

void
ShiftEngine::onDemandMiss(Addr block_addr, Cycle now)
{
    if (active_ && outstanding_.contains(block_addr)) {
        // Already predicted (fill in flight or just confirmed): the
        // stream is on track; onDemandAccess handles advancement.
        return;
    }

    // Stream redirect: find the most recent occurrence of the missing
    // block in the shared history and replay from there.
    const auto pos = history_.lookup(block_addr);
    if (!pos) {
        indexMissesStat_->inc();
        active_ = false;
        return;
    }

    redirectsStat_->inc();
    active_ = true;
    cursor_ = *pos + 1;  // the entry at *pos is the missing block itself
    outstanding_.clear();
    // The first batch pays the LLC metadata-read latency.
    issueAhead(now, params_.historyReadLatency);
}

void
ShiftEngine::onWarmAccess(Addr block_addr, Cycle now, bool miss)
{
    // The detailed path's hook order per block: miss (redirect) first,
    // then access (record/confirm/advance).
    if (miss && !(active_ && outstanding_.contains(block_addr))) {
        const auto pos = history_.lookup(block_addr);
        if (!pos) {
            indexMissesStat_->inc();
            active_ = false;
        } else {
            redirectsStat_->inc();
            active_ = true;
            cursor_ = *pos + 1;
            outstanding_.clear();
            issueAhead(now, 0, /*warm=*/true);
        }
    }

    if (recorder_)
        history_.record(block_addr);
    if (active_ && confirm(block_addr))
        issueAhead(now, 0, /*warm=*/true);
}

} // namespace cfl
