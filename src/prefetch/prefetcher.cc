#include "prefetch/prefetcher.hh"

// Interface is header-only; this translation unit anchors the vtable.

namespace cfl
{
} // namespace cfl
