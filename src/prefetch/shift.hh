/**
 * @file
 * SHIFT — Shared History Instruction Fetch (Kaynak, Grot & Falsafi,
 * MICRO'13), the stream-based instruction prefetcher Confluence builds on
 * (Sections 2.2 and 3.4).
 *
 * Components:
 *  - ShiftHistory (shared): a 32K-entry circular *history buffer* of the
 *    L1-I access stream at block granularity, written by one designated
 *    core and read by all cores running the workload, plus an *index
 *    table* mapping a block address to its most recent history position.
 *    Both live virtualized in the LLC: the history buffer occupies
 *    reserved LLC capacity (~204KB) and index pointers extend the LLC
 *    tag array.
 *  - ShiftEngine (per core): on an L1-I miss, looks up the index table
 *    and starts replaying the stream from the found position, prefetching
 *    `streamDepth` blocks ahead; as the core's demand stream confirms
 *    predictions, the engine advances the stream and tops the lookahead
 *    back up. The first batch after a redirect pays the LLC latency of
 *    reading the history (virtualized metadata); confirmed streaming
 *    reads are pipelined ahead of use.
 */

#ifndef CFL_PREFETCH_SHIFT_HH
#define CFL_PREFETCH_SHIFT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.hh"
#include "common/ring.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"

namespace cfl
{

/** SHIFT configuration (Section 4.2.1 values). */
struct ShiftParams
{
    std::size_t historyEntries = 32 * 1024;
    unsigned streamDepth = 24;       ///< prefetch lookahead in blocks
    unsigned maxIssuePerEvent = 8;   ///< prefetches issued per event
    Cycle historyReadLatency = 20;   ///< LLC round trip for metadata reads

    /** LLC bytes the virtualized history occupies (paper: ~204KB). The
     *  index lives in the LLC tag array and costs area, not capacity. */
    std::uint64_t historyLlcBytes() const
    {
        // 40-bit block addresses, packed: ~5.1 bits/byte => ~6.4B/entry.
        return historyEntries * 51 / 8;
    }
};

/** The shared, LLC-virtualized control-flow history. */
class ShiftHistory
{
  public:
    explicit ShiftHistory(const ShiftParams &params);

    /**
     * Append a block address to the history (called by the designated
     * history-generator core); consecutive duplicates are elided.
     */
    void record(Addr block_addr);

    /** Most recent history position holding @p block_addr, if still
     *  within the circular buffer's reach. */
    std::optional<std::uint64_t> lookup(Addr block_addr) const;

    /** Read the entry at absolute position @p pos (must be in reach). */
    Addr at(std::uint64_t pos) const;

    /** One past the most recently written absolute position. */
    std::uint64_t head() const { return head_; }

    /** True if @p pos is a readable position. */
    bool inReach(std::uint64_t pos) const;

    const ShiftParams &params() const { return params_; }
    StatSet &stats() { return stats_; }

  private:
    ShiftParams params_;
    std::vector<Addr> ring_;
    std::uint64_t head_ = 0;  ///< absolute write position
    Addr lastRecorded_ = ~0ull;
    /** Index table: block -> most recent absolute position. Flat and
     *  open-addressed: record() runs per L1-I block transition, and the
     *  insert/erase churn must stay off the allocator. */
    FlatMap<std::uint64_t> index_;
    StatSet stats_{"shift.history"};
    Stat *recordedStat_;
};

/** Per-core SHIFT stream-replay engine. */
class ShiftEngine : public InstPrefetcher
{
  public:
    /** @param recorder true for the single history-generator core */
    ShiftEngine(const ShiftParams &params, ShiftHistory &history,
                InstMemory &mem, bool recorder);

    void onDemandAccess(Addr block_addr, Cycle now) override;
    void onDemandMiss(Addr block_addr, Cycle now) override;

    /** Touch-only warming: the full stream-replay logic, with fills
     *  installed content-only (InstMemory::warmPrefetch) — the L1-I
     *  sees the same prefetch-driven fills and pollution as the
     *  detailed path, and the stream state (cursor, outstanding set)
     *  enters the full-fidelity window already synchronized. */
    void onWarmAccess(Addr block_addr, Cycle now, bool miss) override;

    /** Blocks predicted but not yet confirmed (tests/analysis). */
    std::size_t outstanding() const { return outstanding_.size(); }

  private:
    /** Issue prefetches from the cursor until the lookahead is full;
     *  @p warm routes fills through warmPrefetch (content-only). */
    void issueAhead(Cycle now, Cycle extra_latency, bool warm = false);

    /** Confirm @p block if it was predicted; returns true if so. */
    bool confirm(Addr block_addr);

    ShiftParams params_;
    ShiftHistory &history_;
    InstMemory &mem_;
    bool recorder_;

    bool active_ = false;
    std::uint64_t cursor_ = 0;  ///< next unread absolute history position

    /** Predicted-but-unconfirmed blocks: a fixed ring of at most
     *  streamDepth entries; membership tests scan it linearly (two dozen
     *  entries) instead of maintaining a parallel hash set. */
    RingBuffer<Addr> outstanding_;

    Stat *issuedStat_;
    Stat *issueRedundantStat_;
    Stat *confirmedStat_;
    Stat *streamLappedStat_;
    Stat *indexMissesStat_;
    Stat *redirectsStat_;
};

} // namespace cfl

#endif // CFL_PREFETCH_SHIFT_HH
