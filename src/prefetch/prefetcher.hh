/**
 * @file
 * Instruction-prefetcher interface.
 *
 * Prefetchers observe the fetch unit's block-granularity demand stream
 * (every block transition and every miss) and, for fetch-directed
 * prefetching, the fetch regions the BPU enqueues. They pull blocks into
 * the L1-I through InstMemory::prefetch().
 */

#ifndef CFL_PREFETCH_PREFETCHER_HH
#define CFL_PREFETCH_PREFETCHER_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace cfl
{

/** Abstract instruction prefetcher. */
class InstPrefetcher
{
  public:
    explicit InstPrefetcher(std::string name) : stats_(std::move(name)) {}
    virtual ~InstPrefetcher() = default;

    InstPrefetcher(const InstPrefetcher &) = delete;
    InstPrefetcher &operator=(const InstPrefetcher &) = delete;

    /** Every demand block transition in the fetch stream (hits too). */
    virtual void onDemandAccess(Addr block_addr, Cycle now)
    {
        (void)block_addr;
        (void)now;
    }

    /** A demand access missed (fill started). */
    virtual void onDemandMiss(Addr block_addr, Cycle now)
    {
        (void)block_addr;
        (void)now;
    }

    /**
     * The BPU enqueued a fetch region spanning @p blocks. The range is
     * a value type (a region always covers consecutive blocks), so the
     * per-region call allocates nothing.
     *
     * @param unresolved_branches branch predictions sitting in the fetch
     *        queue ahead of this region (still speculative); prefetchers
     *        that follow the predicted path (FDP) compound their error
     *        across these (Section 2.1).
     */
    virtual void onFetchRegion(BlockRange blocks,
                               unsigned unresolved_branches, Cycle now)
    {
        (void)blocks;
        (void)unresolved_branches;
        (void)now;
    }

    /** Prediction-quality feedback: @p branches predictions were made in
     *  the last region, of which @p errors were misfetches or
     *  mispredictions (resolved later in reality; reported here). */
    virtual void onBranchOutcome(unsigned branches, unsigned errors)
    {
        (void)branches;
        (void)errors;
    }

    /**
     * Touch-only warming (sampled fast-forward, far from any measured
     * interval): one demand block transition of the architectural fetch
     * stream, with @p miss telling whether it missed L1-I (the fill has
     * already been installed content-only). Implementations keep
     * *content-relevant* state warm: long-lived recorded metadata (the
     * SHIFT history) and whatever prefetch fills they would have issued
     * — installed content-only via InstMemory::warmPrefetch — so the
     * L1-I sees the same prefetch-driven fills (and pollution) as the
     * detailed path. Timing-only state (MSHR occupancy, in-flight
     * latencies) stays untouched; the full-fidelity warming window
     * before the next interval rebuilds it.
     */
    virtual void onWarmAccess(Addr block_addr, Cycle now, bool miss)
    {
        (void)block_addr;
        (void)now;
        (void)miss;
    }

    const std::string &name() const { return stats_.name(); }
    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  protected:
    StatSet stats_;
};

} // namespace cfl

#endif // CFL_PREFETCH_PREFETCHER_HH
