#include "prefetch/consolidation.hh"

#include "common/logging.hh"

namespace cfl
{

HistoryDirectory::HistoryDirectory(const ShiftParams &params, Llc &llc)
    : params_(params), llc_(llc)
{
    recorders_.fill(-1);
}

ShiftHistory &
HistoryDirectory::registerWorkload(WorkloadId workload)
{
    std::unique_ptr<ShiftHistory> &slot =
        instances_.at(workloadIndex(workload));
    if (slot != nullptr)
        return *slot;

    llc_.reserveMetadata(params_.historyLlcBytes());
    reservedBytes_ += params_.historyLlcBytes();
    slot = std::make_unique<ShiftHistory>(params_);
    ++numRegistered_;
    return *slot;
}

ShiftHistory &
HistoryDirectory::historyFor(WorkloadId workload)
{
    std::unique_ptr<ShiftHistory> &slot =
        instances_.at(workloadIndex(workload));
    cfl_assert(slot != nullptr, "no history instance for workload '%s'",
               workloadSlug(workload).c_str());
    return *slot;
}

bool
HistoryDirectory::has(WorkloadId workload) const
{
    return instances_.at(workloadIndex(workload)) != nullptr;
}

bool
HistoryDirectory::claimRecorder(WorkloadId workload, unsigned core_id)
{
    cfl_assert(has(workload), "claimRecorder for unregistered workload");
    int &recorder = recorders_.at(workloadIndex(workload));
    if (recorder < 0)
        recorder = static_cast<int>(core_id);
    return recorder == static_cast<int>(core_id);
}

} // namespace cfl
