#include "prefetch/consolidation.hh"

#include "common/logging.hh"

namespace cfl
{

HistoryDirectory::HistoryDirectory(const ShiftParams &params, Llc &llc)
    : params_(params), llc_(llc)
{
}

ShiftHistory &
HistoryDirectory::registerWorkload(const std::string &name)
{
    auto it = instances_.find(name);
    if (it != instances_.end())
        return *it->second;

    llc_.reserveMetadata(params_.historyLlcBytes());
    reservedBytes_ += params_.historyLlcBytes();
    it = instances_
             .emplace(name, std::make_unique<ShiftHistory>(params_))
             .first;
    return *it->second;
}

ShiftHistory &
HistoryDirectory::historyFor(const std::string &name)
{
    const auto it = instances_.find(name);
    cfl_assert(it != instances_.end(),
               "no history instance for workload '%s'", name.c_str());
    return *it->second;
}

bool
HistoryDirectory::has(const std::string &name) const
{
    return instances_.find(name) != instances_.end();
}

bool
HistoryDirectory::claimRecorder(const std::string &name, unsigned core_id)
{
    cfl_assert(has(name), "claimRecorder for unregistered workload");
    const auto [it, inserted] = recorders_.emplace(name, core_id);
    return inserted || it->second == core_id;
}

} // namespace cfl
