/**
 * @file
 * Fetch-directed prefetching (Reinman, Calder & Austin, MICRO'99;
 * Section 2.1 of the Confluence paper).
 *
 * The branch prediction unit runs ahead of the fetch unit through the
 * fetch queue; FDP issues prefetches for the instruction blocks of every
 * enqueued fetch region that are not already present. Its lookahead is
 * bounded by the queue depth (six basic blocks) and its accuracy by the
 * BTB/direction predictor — the two limitations Section 2.1 quantifies.
 * FDP reuses existing branch-predictor metadata and therefore adds no
 * storage.
 */

#ifndef CFL_PREFETCH_FDP_HH
#define CFL_PREFETCH_FDP_HH

#include "common/rng.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"

namespace cfl
{

/** Fetch-directed prefetcher. */
class FdpPrefetcher : public InstPrefetcher
{
  public:
    explicit FdpPrefetcher(InstMemory &mem);

    void onFetchRegion(BlockRange blocks, unsigned unresolved_branches,
                       Cycle now) override;
    void onBranchOutcome(unsigned branches, unsigned errors) override;

    /** Current per-branch prediction-error estimate (for tests). */
    double errorRate() const { return errRate_; }

  private:
    InstMemory &mem_;
    Rng rng_;
    double errRate_ = 0.10;  ///< pessimistic until feedback arrives

    // Per-region counters resolved once (StatSet nodes are stable).
    Stat *wrongPathSuppressedStat_ = &stats_.scalar("wrongPathSuppressed");
    Stat *issuedStat_ = &stats_.scalar("issued");
};

} // namespace cfl

#endif // CFL_PREFETCH_FDP_HH
