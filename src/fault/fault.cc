#include "fault/fault.hh"

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <signal.h>
#include <unistd.h>
#include <unordered_map>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sweepio/digest.hh"

namespace cfl::fault
{

namespace
{

struct KindName
{
    Kind kind;
    const char *slug;
};

constexpr KindName kKindNames[] = {
    {Kind::None, "none"},
    {Kind::ShortWrite, "short-write"},
    {Kind::Enospc, "enospc"},
    {Kind::Eio, "eio"},
    {Kind::RenameFail, "rename-fail"},
    {Kind::Die, "die"},
    {Kind::Kill, "kill"},
    {Kind::ClockSkew, "clock-skew"},
};

bool
parseU64(std::string_view text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + std::uint64_t(c - '0');
    }
    *out = v;
    return true;
}

bool
parseI64(std::string_view text, std::int64_t *out)
{
    bool neg = !text.empty() && text[0] == '-';
    std::uint64_t mag = 0;
    if (!parseU64(neg ? text.substr(1) : text, &mag))
        return false;
    *out = neg ? -std::int64_t(mag) : std::int64_t(mag);
    return true;
}

std::vector<std::string_view>
splitOn(std::string_view text, char sep)
{
    std::vector<std::string_view> parts;
    while (true) {
        std::size_t pos = text.find(sep);
        parts.push_back(text.substr(0, pos));
        if (pos == std::string_view::npos)
            return parts;
        text = text.substr(pos + 1);
    }
}

/**
 * The process-global injector: the installed plan plus the mutable
 * state a replay depends on (per-site hit counters, the sticky clock
 * skew, the fault-log fd). All guarded by one mutex; the fast path
 * when nothing is installed is a single relaxed atomic load in
 * active().
 */
struct Injector
{
    std::mutex mutex;
    bool envChecked = false;
    bool hasPlan = false;
    FaultPlan plan;
    std::unordered_map<std::string, std::uint64_t> hits;
    bool skewDecided = false;
    std::int64_t skewMs = 0;
    int logFd = -1;

    void
    resetLocked()
    {
        hits.clear();
        skewDecided = false;
        skewMs = 0;
        if (logFd >= 0)
            ::close(logFd);
        logFd = -1;
    }

    void
    logFiredLocked(const char *site, std::uint64_t hit,
                   const Decision &d)
    {
        if (plan.logPath.empty())
            return;
        if (logFd < 0) {
            logFd = ::open(plan.logPath.c_str(),
                           O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                           0644);
            if (logFd < 0)
                return;
        }
        char line[256];
        int n = std::snprintf(line, sizeof(line),
                              "fault site=%s hit=%" PRIu64
                              " kind=%s arg=%" PRId64 "\n",
                              site, hit, kindSlug(d.kind), d.arg);
        if (n > 0)
            (void)!::write(logFd, line, std::size_t(n));
    }
};

Injector &
injector()
{
    static Injector g;
    return g;
}

std::atomic<bool> g_active{false};

/** Load CONFLUENCE_FAULT_PLAN (or the CONFLUENCE_SWEEP_FAULT=abort
 *  alias) into @p inj if neither has been checked yet. */
void
ensureEnvLoadedLocked(Injector &inj)
{
    if (inj.envChecked)
        return;
    inj.envChecked = true;
    const char *spec = std::getenv("CONFLUENCE_FAULT_PLAN");
    if (spec && *spec) {
        std::string error;
        if (!FaultPlan::parse(spec, &inj.plan, &error))
            cfl_fatal("bad CONFLUENCE_FAULT_PLAN: %s", error.c_str());
        inj.hasPlan = true;
        g_active.store(true, std::memory_order_relaxed);
        return;
    }
    const char *legacy = std::getenv("CONFLUENCE_SWEEP_FAULT");
    if (legacy && *legacy) {
        if (std::strcmp(legacy, "abort") != 0) {
            cfl_fatal("unknown CONFLUENCE_SWEEP_FAULT value '%s' "
                      "(expected 'abort')", legacy);
        }
        inj.plan = FaultPlan{};
        inj.plan.pins.push_back(
            {"sweep.result.publish", 0, Kind::Die, false, 0});
        inj.hasPlan = true;
        g_active.store(true, std::memory_order_relaxed);
    }
}

/** Decide one hit of @p site, log it if fired, and carry out death
 *  kinds. Returns the (non-death) decision to simulate. */
Decision
hitSite(const char *site)
{
    Injector &inj = injector();
    Decision d;
    std::uint64_t hit = 0;
    {
        std::scoped_lock lock(inj.mutex);
        ensureEnvLoadedLocked(inj);
        if (!inj.hasPlan)
            return d;
        hit = inj.hits[site]++;
        d = inj.plan.decide(site, hit);
        if (d.kind == Kind::None)
            return d;
        inj.logFiredLocked(site, hit, d);
    }
    cfl_warn("fault injected at %s hit %" PRIu64 ": %s (arg %" PRId64
             ")", site, hit, kindSlug(d.kind), d.arg);
    if (d.kind == Kind::Die)
        std::_Exit(int(d.arg));
    if (d.kind == Kind::Kill) {
        ::kill(::getpid(), SIGKILL);
        // SIGKILL is not deliverable to a stopped-then-killed race
        // loser; don't fall through into normal operation.
        std::_Exit(137);
    }
    return d;
}

} // namespace

const char *
kindSlug(Kind kind)
{
    for (const KindName &k : kKindNames) {
        if (k.kind == kind)
            return k.slug;
    }
    return "unknown";
}

std::optional<Kind>
kindFromSlug(std::string_view slug)
{
    for (const KindName &k : kKindNames) {
        if (slug == k.slug)
            return k.kind;
    }
    return std::nullopt;
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan *out,
                 std::string *error)
{
    FaultPlan plan;
    for (std::string_view field : splitOn(spec, ';')) {
        if (field.empty())
            continue;
        std::size_t eq = field.find('=');
        if (eq == std::string_view::npos) {
            *error = "field '" + std::string(field) +
                     "' has no '='";
            return false;
        }
        std::string_view key = field.substr(0, eq);
        std::string_view value = field.substr(eq + 1);
        if (key == "seed") {
            if (!parseU64(value, &plan.seed)) {
                *error = "bad seed '" + std::string(value) + "'";
                return false;
            }
        } else if (key == "rate") {
            char *end = nullptr;
            std::string text(value);
            plan.rate = std::strtod(text.c_str(), &end);
            if (!end || *end != '\0' || plan.rate < 0.0 ||
                plan.rate > 1.0) {
                *error = "bad rate '" + text + "' (want [0,1])";
                return false;
            }
        } else if (key == "kinds") {
            for (std::string_view slug : splitOn(value, ',')) {
                std::optional<Kind> k = kindFromSlug(slug);
                if (!k || *k == Kind::None) {
                    *error = "unknown fault kind '" +
                             std::string(slug) + "'";
                    return false;
                }
                plan.kinds.push_back(*k);
            }
        } else if (key == "sites") {
            for (std::string_view prefix : splitOn(value, ',')) {
                if (prefix.empty()) {
                    *error = "empty site prefix in sites=";
                    return false;
                }
                plan.sitePrefixes.emplace_back(prefix);
            }
        } else if (key == "pin") {
            // SITE@HIT:KIND[:ARG]
            std::size_t at = value.find('@');
            if (at == std::string_view::npos || at == 0) {
                *error = "pin '" + std::string(value) +
                         "' wants SITE@HIT:KIND[:ARG]";
                return false;
            }
            FaultPin pin;
            pin.site = std::string(value.substr(0, at));
            std::string_view rest = value.substr(at + 1);
            std::size_t colon = rest.find(':');
            if (colon == std::string_view::npos ||
                !parseU64(rest.substr(0, colon), &pin.hit)) {
                *error = "pin '" + std::string(value) +
                         "' has a bad hit ordinal";
                return false;
            }
            rest = rest.substr(colon + 1);
            std::size_t argColon = rest.find(':');
            std::string_view slug = rest.substr(0, argColon);
            std::optional<Kind> k = kindFromSlug(slug);
            if (!k || *k == Kind::None) {
                *error = "pin '" + std::string(value) +
                         "' has unknown kind '" + std::string(slug) +
                         "'";
                return false;
            }
            pin.kind = *k;
            if (argColon != std::string_view::npos) {
                if (!parseI64(rest.substr(argColon + 1), &pin.arg)) {
                    *error = "pin '" + std::string(value) +
                             "' has a bad arg";
                    return false;
                }
                pin.hasArg = true;
            }
            plan.pins.push_back(std::move(pin));
        } else if (key == "log") {
            plan.logPath = std::string(value);
        } else if (key == "die-exit") {
            std::int64_t v = 0;
            if (!parseI64(value, &v) || v < 0 || v > 255) {
                *error = "bad die-exit '" + std::string(value) + "'";
                return false;
            }
            plan.dieExit = int(v);
        } else if (key == "skew-cap-ms") {
            std::int64_t v = 0;
            if (!parseI64(value, &v) || v < 0) {
                *error = "bad skew-cap-ms '" + std::string(value) +
                         "'";
                return false;
            }
            plan.skewCapMs = v;
        } else {
            *error = "unknown plan key '" + std::string(key) + "'";
            return false;
        }
    }
    *out = std::move(plan);
    return true;
}

std::string
FaultPlan::encode() const
{
    std::string spec;
    auto field = [&spec](const std::string &text) {
        if (!spec.empty())
            spec += ';';
        spec += text;
    };
    if (seed != 0)
        field("seed=" + std::to_string(seed));
    if (rate != 0.0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "rate=%.17g", rate);
        field(buf);
    }
    if (!kinds.empty()) {
        std::string list;
        for (Kind k : kinds) {
            if (!list.empty())
                list += ',';
            list += kindSlug(k);
        }
        field("kinds=" + list);
    }
    if (!sitePrefixes.empty()) {
        std::string list;
        for (const std::string &p : sitePrefixes) {
            if (!list.empty())
                list += ',';
            list += p;
        }
        field("sites=" + list);
    }
    for (const FaultPin &pin : pins) {
        std::string text = "pin=" + pin.site + "@" +
                           std::to_string(pin.hit) + ":" +
                           kindSlug(pin.kind);
        if (pin.hasArg)
            text += ":" + std::to_string(pin.arg);
        field(text);
    }
    if (!logPath.empty())
        field("log=" + logPath);
    if (dieExit != 4)
        field("die-exit=" + std::to_string(dieExit));
    if (skewCapMs != 30000)
        field("skew-cap-ms=" + std::to_string(skewCapMs));
    return spec;
}

Decision
FaultPlan::decide(std::string_view site, std::uint64_t hit) const
{
    for (const FaultPin &pin : pins) {
        if (pin.hit != hit || pin.site != site)
            continue;
        Decision d{pin.kind, pin.arg};
        if (!pin.hasArg) {
            if (pin.kind == Kind::Die)
                d.arg = dieExit;
            else if (pin.kind == Kind::ClockSkew)
                d.arg = skewCapMs;
        }
        return d;
    }
    if (rate <= 0.0 || kinds.empty())
        return {};
    if (!sitePrefixes.empty()) {
        bool matched = false;
        for (const std::string &prefix : sitePrefixes) {
            if (site.substr(0, prefix.size()) == prefix) {
                matched = true;
                break;
            }
        }
        if (!matched)
            return {};
    }
    std::uint64_t h = hashCombine(
        seed, hashCombine(sweepio::fnv1a64(site), hit));
    // Top 53 bits -> uniform double in [0,1).
    double draw = double(h >> 11) * 0x1.0p-53;
    if (draw >= rate)
        return {};
    std::uint64_t entropy = hashMix(h);
    Decision d;
    d.kind = kinds[entropy % kinds.size()];
    switch (d.kind) {
      case Kind::Die:
        d.arg = dieExit;
        break;
      case Kind::ClockSkew:
        d.arg = std::int64_t(entropy % std::uint64_t(
                    2 * skewCapMs + 1)) - skewCapMs;
        break;
      case Kind::ShortWrite:
      case Kind::Enospc:
        d.arg = std::int64_t(entropy >> 1);
        break;
      default:
        break;
    }
    return d;
}

void
installPlan(const FaultPlan &plan)
{
    Injector &inj = injector();
    std::scoped_lock lock(inj.mutex);
    inj.envChecked = true;
    inj.hasPlan = true;
    inj.plan = plan;
    inj.resetLocked();
    g_active.store(true, std::memory_order_relaxed);
}

void
clearPlan()
{
    Injector &inj = injector();
    std::scoped_lock lock(inj.mutex);
    inj.envChecked = true;
    inj.hasPlan = false;
    inj.plan = FaultPlan{};
    inj.resetLocked();
    g_active.store(false, std::memory_order_relaxed);
}

bool
active()
{
    if (g_active.load(std::memory_order_relaxed))
        return true;
    Injector &inj = injector();
    std::scoped_lock lock(inj.mutex);
    ensureEnvLoadedLocked(inj);
    return inj.hasPlan;
}

std::optional<FaultPlan>
activePlan()
{
    if (!active())
        return std::nullopt;
    Injector &inj = injector();
    std::scoped_lock lock(inj.mutex);
    return inj.plan;
}

Decision
at(const char *site)
{
    if (!active())
        return {};
    return hitSite(site);
}

void
checkpoint(const char *site)
{
    (void)at(site);
}

ssize_t
faultWrite(int fd, const void *data, std::size_t n, const char *site)
{
    Decision d = at(site);
    switch (d.kind) {
      case Kind::ShortWrite: {
        // Land a proper prefix of [1, n) bytes and report it short.
        std::size_t len = n > 1 ? 1 + std::uint64_t(d.arg) % (n - 1)
                                : 0;
        if (len > 0)
            (void)!::write(fd, data, len);
        return ssize_t(len);
      }
      case Kind::Enospc: {
        // A torn prefix may land before the device fills up.
        std::size_t len = n > 0 ? std::uint64_t(d.arg) % n : 0;
        if (len > 0)
            (void)!::write(fd, data, len);
        errno = ENOSPC;
        return -1;
      }
      case Kind::Eio:
      case Kind::RenameFail:
        errno = EIO;
        return -1;
      default:
        return ::write(fd, data, n);
    }
}

bool
renameShouldFail(const char *site)
{
    Decision d = at(site);
    return d.kind == Kind::RenameFail || d.kind == Kind::Eio ||
           d.kind == Kind::Enospc;
}

std::int64_t
clockSkewMs()
{
    if (!active())
        return 0;
    Injector &inj = injector();
    {
        std::scoped_lock lock(inj.mutex);
        if (inj.skewDecided)
            return inj.skewMs;
    }
    Decision d = at("queue.clock");
    std::scoped_lock lock(inj.mutex);
    if (!inj.skewDecided) {
        inj.skewDecided = true;
        inj.skewMs = d.kind == Kind::ClockSkew ? d.arg : 0;
    }
    return inj.skewMs;
}

} // namespace cfl::fault
