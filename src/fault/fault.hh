/**
 * @file
 * Deterministic, seeded fault injection for the durability stack.
 *
 * Every durability-critical syscall site in src/queue, src/dispatch,
 * and the worker/sweep tools is threaded through this layer under a
 * stable site name ("queue.done.write", "cache.flush.write",
 * "sweep.result.publish", ...). A FaultPlan decides, per site and per
 * hit ordinal, whether that operation fails — and how: a short (torn)
 * write, ENOSPC, EIO, a failed rename, outright process death (clean
 * _exit or SIGKILL), or a lease-clock skew. Decisions are a pure
 * function of (plan seed, site name, per-process per-site hit count),
 * so a plan replays exactly: the same plan over the same execution
 * fires the same faults at the same operations, independent of how
 * *other* sites interleave (each site counts its own hits).
 *
 * Plans come from the CONFLUENCE_FAULT_PLAN environment variable (the
 * chaos harness launches every process with its own plan) or from
 * installPlan() (tests). The spec grammar, ';'-separated key=value
 * fields:
 *
 *   seed=N            decision seed (default 0)
 *   rate=F            per-hit fire probability in [0,1] (default 0)
 *   kinds=a,b,..      fault kinds the rate draws from: short-write,
 *                     enospc, eio, rename-fail, die, kill, clock-skew
 *   sites=p1,p2,..    site-name prefixes the rate applies to
 *                     (default: every instrumented site)
 *   pin=SITE@HIT:KIND[:ARG]
 *                     fire KIND at exactly the HITth hit of SITE
 *                     (repeatable; pins override the rate). ARG is the
 *                     die exit code / signed skew ms / write entropy.
 *   log=PATH          append "fault site=.. hit=.. kind=.. arg=.."
 *                     per fired fault (single O_APPEND write each)
 *   die-exit=N        exit code of `die` when a pin gives no ARG
 *                     (default 4, confluence_sweep's documented
 *                     injected-fault code)
 *   skew-cap-ms=N     clock-skew magnitude cap (default 30000)
 *
 * Legacy aliases (older CI spellings, translated here and in
 * confluence_dispatch): CONFLUENCE_SWEEP_FAULT=abort becomes the plan
 * "pin=sweep.result.publish@0:die:4"; CONFLUENCE_DISPATCH_FAULT keeps
 * its spellings in confluence_dispatch, which now routes both through
 * this framework.
 *
 * When no plan is configured, every helper is a cheap no-op (one
 * relaxed atomic load), so production paths pay nothing.
 */

#ifndef CFL_FAULT_FAULT_HH
#define CFL_FAULT_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <vector>

namespace cfl::fault
{

enum class Kind : std::uint8_t
{
    None,
    ShortWrite, ///< write() lands a prefix and reports the short count
    Enospc,     ///< write() may land a torn prefix, then fails ENOSPC
    Eio,        ///< the operation fails EIO, nothing lands
    RenameFail, ///< rename() fails without renaming
    Die,        ///< the process _exit()s on the spot (arg = exit code)
    Kill,       ///< the process raises SIGKILL on the spot
    ClockSkew,  ///< queue wall clock shifts by arg ms (signed, sticky)
};

/** The stable slug of @p kind ("short-write", "die", ...). */
const char *kindSlug(Kind kind);

/** The Kind for @p slug, or nullopt for an unknown spelling. */
std::optional<Kind> kindFromSlug(std::string_view slug);

/** Whether @p kind is an I/O failure — the kinds a site that is not a
 *  write/rename can still interpret as "this operation failed". */
constexpr bool
isIoFault(Kind kind)
{
    return kind == Kind::ShortWrite || kind == Kind::Enospc ||
           kind == Kind::Eio || kind == Kind::RenameFail;
}

/** What a site hit should do. arg: exit code for Die, signed skew ms
 *  for ClockSkew, raw entropy for ShortWrite/Enospc (callers reduce it
 *  modulo the write size). */
struct Decision
{
    Kind kind = Kind::None;
    std::int64_t arg = 0;
};

/** One exact-hit injection: fire @p kind at hit @p hit of @p site. */
struct FaultPin
{
    std::string site;
    std::uint64_t hit = 0;
    Kind kind = Kind::None;
    bool hasArg = false;
    std::int64_t arg = 0;
};

/**
 * A complete, replayable fault schedule. decide() is pure — equal
 * plans give equal decisions — so the global injector below is just
 * this plus per-site hit counters and a log.
 */
struct FaultPlan
{
    std::uint64_t seed = 0;
    double rate = 0.0;
    std::vector<Kind> kinds;
    std::vector<std::string> sitePrefixes; ///< empty = all sites
    std::vector<FaultPin> pins;
    std::string logPath;
    int dieExit = 4;
    std::int64_t skewCapMs = 30000;

    /** Parse the spec grammar above; false + *error on a bad spec. */
    static bool parse(const std::string &spec, FaultPlan *out,
                      std::string *error);

    /** Re-encode into a spec string parse() accepts (the chaos driver
     *  builds plans programmatically and ships them through the
     *  environment). Defaults are omitted. */
    std::string encode() const;

    /** The decision for hit @p hit of @p site: pins first, then the
     *  seeded rate draw over matching site prefixes. Pure. */
    Decision decide(std::string_view site, std::uint64_t hit) const;
};

// --- process-global injector -------------------------------------------

/** Install @p plan for this process (tests, legacy-alias translation).
 *  Overrides any environment-configured plan and resets hit counters. */
void installPlan(const FaultPlan &plan);

/** Remove the active plan and reset all injector state (counters,
 *  skew, log). The environment is not re-read afterwards. */
void clearPlan();

/** Whether any plan is active (loading CONFLUENCE_FAULT_PLAN / the
 *  CONFLUENCE_SWEEP_FAULT alias on first use). */
bool active();

/** A copy of the active plan, if any (env-loaded on first use). */
std::optional<FaultPlan> activePlan();

/**
 * Count one hit of @p site and return its decision. Die and Kill are
 * carried out *here* — any instrumented site is a potential death
 * point — after logging and a stderr warning; every other kind is
 * returned for the caller to simulate. No-op (Kind::None) when no plan
 * is active.
 */
Decision at(const char *site);

/** at() for pure death points (worker/coordinator checkpoints): any
 *  surviving, non-death decision is deliberately ignored. */
void checkpoint(const char *site);

/**
 * ::write(fd, data, n) routed through the fault layer as @p site.
 * ShortWrite lands a proper prefix and returns its (short) length;
 * Enospc lands a torn prefix then returns -1 with errno = ENOSPC; Eio
 * returns -1 with errno = EIO and writes nothing. Everything else
 * (including no fault) performs the real write.
 */
ssize_t faultWrite(int fd, const void *data, std::size_t n,
                   const char *site);

/** Whether an injected failure should make this site's rename fail
 *  (RenameFail/Eio/Enospc fired). Counts a hit either way. */
bool renameShouldFail(const char *site);

/** The sticky per-process lease-clock skew in ms, decided once at site
 *  "queue.clock" (0 when no plan or no ClockSkew fired). */
std::int64_t clockSkewMs();

/** RAII plan installation for tests. */
struct ScopedPlanForTesting
{
    explicit ScopedPlanForTesting(const FaultPlan &plan)
    {
        installPlan(plan);
    }
    ~ScopedPlanForTesting() { clearPlan(); }
    ScopedPlanForTesting(const ScopedPlanForTesting &) = delete;
    ScopedPlanForTesting &operator=(const ScopedPlanForTesting &) =
        delete;
};

} // namespace cfl::fault

#endif // CFL_FAULT_FAULT_HH
