#include "core/bpu.hh"

#include "common/logging.hh"

namespace cfl
{

std::vector<Addr>
FetchRegion::blocks() const
{
    std::vector<Addr> out;
    for (const Addr b : blockRange())
        out.push_back(b);
    return out;
}

Bpu::Bpu(const BpuParams &params, Btb &btb, DirectionPredictor &direction,
         ReturnAddressStack &ras, IndirectTargetCache &itc,
         ExecEngine &engine, InstMemory *mem)
    : params_(params),
      btb_(btb),
      direction_(direction),
      ras_(ras),
      itc_(itc),
      engine_(engine),
      mem_(mem),
      instsStat_(&stats_.scalar("insts")),
      branchesStat_(&stats_.scalar("branches")),
      takenLookupsStat_(&stats_.scalar("takenBranchLookups")),
      regionCapEndsStat_(&stats_.scalar("regionCapEnds")),
      btbL2StallStat_(&stats_.scalar("btbLevel2StallCycles")),
      btbTakenMissesStat_(&stats_.scalar("btbTakenMisses")),
      misfetchesStat_(&stats_.scalar("misfetches")),
      condMispredictsStat_(&stats_.scalar("condMispredicts")),
      rasMispredictsStat_(&stats_.scalar("rasMispredicts")),
      indirectMispredictsStat_(&stats_.scalar("indirectMispredicts"))
{
}

void
Bpu::resolveMisfetchedBranch(const DynInst &inst, Cycle now)
{
    // Decode discovers the branch; execute resolves it. Keep the
    // speculative structures consistent and install the entry so the
    // next encounter hits (taken branches only: a BTB holds targets of
    // taken branches).
    if (inst.kind == BranchKind::Cond)
        direction_.update(inst.pc, inst.taken);
    if (isCall(inst.kind))
        ras_.push(inst.fallThrough());
    if (inst.kind == BranchKind::Return)
        (void)ras_.pop();
    if (usesIndirectPredictor(inst.kind))
        itc_.update(inst.pc, inst.target);
    if (inst.taken) {
        btb_.learn(inst.pc, inst.kind,
                   hasDirectTarget(inst.kind) ? inst.target : 0, now);
        // The decode redirect restarts fetch at the target: its block
        // fill begins now, overlapping the misfetch bubble.
        if (mem_ != nullptr) {
            const Addr target_block = blockAlign(inst.target);
            if (!mem_->residentOrInFlight(target_block))
                mem_->prefetch(target_block, now);
        }
    }
}

BpuResult
Bpu::predictNextRegion(Cycle now)
{
    BpuResult out;
    out.region.startPc = engine_.peek().pc;

    while (true) {
        const DynInst inst = engine_.next();
        ++out.region.numInsts;
        instsStat_->inc();

        if (!inst.isBranch()) {
            if (out.region.numInsts >= params_.maxRegionInsts) {
                // Region cap: continue sequentially next cycle.
                regionCapEndsStat_->inc();
                return out;
            }
            continue;
        }

        branchesStat_->inc();
        ++out.region.numBranches;
        if (inst.taken)
            takenLookupsStat_->inc();

        const BtbLookupResult btb = btb_.lookup(inst, now);
        out.stall += btb.stallCycles;
        if (btb.stallCycles > 0)
            btbL2StallStat_->inc(btb.stallCycles);

        if (!btb.hit) {
            if (!inst.taken) {
                // The BTB cannot even identify this instruction as a
                // branch, so fetch falls through — which is correct.
                // Decode still trains the direction predictor.
                if (inst.kind == BranchKind::Cond)
                    direction_.update(inst.pc, inst.taken);
                if (out.region.numInsts >= params_.maxRegionInsts) {
                    regionCapEndsStat_->inc();
                    return out;
                }
                continue;
            }

            // Actually-taken branch absent from the BTB: the sequential
            // fetch region is wrong (misfetch). Paper Section 2.1: this
            // is the BTB-miss event.
            btbTakenMissesStat_->inc();
            misfetchesStat_->inc();
            resolveMisfetchedBranch(inst, now);
            out.misfetch = true;
            out.region.deliveryBubble += params_.misfetchPenalty;
            return out;
        }

        // BTB hit: predict with the full prediction unit.
        switch (inst.kind) {
          case BranchKind::Cond: {
            const bool predicted_taken = direction_.predict(inst.pc);
            direction_.update(inst.pc, inst.taken);
            if (predicted_taken != inst.taken) {
                condMispredictsStat_->inc();
                out.mispredict = true;
                out.region.deliveryBubble += params_.mispredictPenalty;
                return out;
            }
            if (inst.taken) {
                // Correctly predicted taken; direct target from the BTB
                // entry is exact for PC-relative branches.
                return out;
            }
            // Correctly predicted not-taken: keep walking.
            if (out.region.numInsts >= params_.maxRegionInsts) {
                regionCapEndsStat_->inc();
                return out;
            }
            continue;
          }

          case BranchKind::Uncond:
            return out;

          case BranchKind::Call:
            ras_.push(inst.fallThrough());
            return out;

          case BranchKind::Return: {
            const Addr predicted = ras_.pop();
            if (predicted != inst.target) {
                rasMispredictsStat_->inc();
                out.mispredict = true;
                out.region.deliveryBubble += params_.mispredictPenalty;
            }
            return out;
          }

          case BranchKind::IndJump:
          case BranchKind::IndCall: {
            const Addr predicted = itc_.predict(inst.pc);
            itc_.update(inst.pc, inst.target);
            if (isCall(inst.kind))
                ras_.push(inst.fallThrough());
            if (predicted != inst.target) {
                indirectMispredictsStat_->inc();
                out.mispredict = true;
                out.region.deliveryBubble += params_.mispredictPenalty;
            }
            return out;
          }

          case BranchKind::None:
            cfl_panic("branch with kind None");
        }
    }
}

} // namespace cfl
