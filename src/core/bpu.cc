#include "core/bpu.hh"

#include "common/logging.hh"

namespace cfl
{

std::vector<Addr>
FetchRegion::blocks() const
{
    std::vector<Addr> out;
    for (const Addr b : blockRange())
        out.push_back(b);
    return out;
}

Bpu::Bpu(const BpuParams &params, Btb &btb, DirectionPredictor &direction,
         ReturnAddressStack &ras, IndirectTargetCache &itc,
         ExecEngine &engine, InstMemory *mem)
    : params_(params),
      btb_(btb),
      direction_(direction),
      hybridDir_(dynamic_cast<HybridPredictor *>(&direction)),
      ras_(ras),
      itc_(itc),
      engine_(engine),
      mem_(mem),
      instsStat_(&stats_.scalar("insts")),
      branchesStat_(&stats_.scalar("branches")),
      takenLookupsStat_(&stats_.scalar("takenBranchLookups")),
      regionCapEndsStat_(&stats_.scalar("regionCapEnds")),
      btbL2StallStat_(&stats_.scalar("btbLevel2StallCycles")),
      btbTakenMissesStat_(&stats_.scalar("btbTakenMisses")),
      misfetchesStat_(&stats_.scalar("misfetches")),
      condMispredictsStat_(&stats_.scalar("condMispredicts")),
      rasMispredictsStat_(&stats_.scalar("rasMispredicts")),
      indirectMispredictsStat_(&stats_.scalar("indirectMispredicts"))
{
}

void
Bpu::resolveMisfetchedBranch(const DynInst &inst, Cycle now)
{
    // Decode discovers the branch; execute resolves it. Keep the
    // speculative structures consistent and install the entry so the
    // next encounter hits (taken branches only: a BTB holds targets of
    // taken branches).
    if (inst.kind == BranchKind::Cond)
        direction_.update(inst.pc, inst.taken);
    if (isCall(inst.kind))
        ras_.push(inst.fallThrough());
    if (inst.kind == BranchKind::Return)
        (void)ras_.pop();
    if (usesIndirectPredictor(inst.kind))
        itc_.update(inst.pc, inst.target);
    if (inst.taken) {
        btb_.learn(inst.pc, inst.kind,
                   hasDirectTarget(inst.kind) ? inst.target : 0, now);
        // The decode redirect restarts fetch at the target: its block
        // fill begins now, overlapping the misfetch bubble.
        if (mem_ != nullptr) {
            const Addr target_block = blockAlign(inst.target);
            if (!mem_->residentOrInFlight(target_block))
                mem_->prefetch(target_block, now);
        }
    }
}

BpuResult
Bpu::predictNextRegion(Cycle now)
{
    // Virtual-dispatch entry point; the typed core runner calls
    // predictNextRegionT<ConcreteBtb> directly.
    return predictNextRegionT<Btb>(now);
}

Counter
Bpu::touchStream(Counter insts, InstMemory &mem, InstPrefetcher *pf,
                 Cycle &now)
{
    const TraceBuffer *trace = engine_.replayBuffer();
    if (trace == nullptr)
        return touchStreamGenerated(insts, mem, pf, now);
    if (engine_.peekPending())
        return 0;

    const std::uint64_t limit = trace->size();
    const std::uint32_t *bpos = trace->branchPositions();
    const std::uint64_t nbr = trace->numBranches();
    const unsigned max_insts = params_.maxRegionInsts;

    const std::uint64_t start = engine_.replayCursor();
    std::uint64_t pos = start;
    std::uint64_t h =
        std::lower_bound(bpos, bpos + nbr, pos) - bpos;
    // Consecutive regions usually stay inside one block; a repeated
    // probe of the block just touched is a hit that re-marks an
    // already-MRU line, so eliding it leaves cache state identical.
    Addr last_block = ~Addr{0};
    DynInst inst;

    while (pos - start < insts && pos < limit) {
        const Addr start_pc = trace->pcAt(pos);
        unsigned ninsts = 0;
        // Regions split at taken branches and the detailed-mode length
        // cap; the touched block stream is identical either way. Every
        // consumed branch warms the per-branch predictor state
        // (warmBranch); taken branches additionally feed the BTB's
        // large-backing-level hook (see Btb::warmTakenBranch).
        while (true) {
            const std::uint64_t next_branch = h < nbr ? bpos[h] : limit;
            const std::uint64_t cap_end = pos + (max_insts - ninsts);
            if (next_branch >= cap_end || next_branch >= limit) {
                const std::uint64_t end = std::min(cap_end, limit);
                ninsts += static_cast<unsigned>(end - pos);
                pos = end;
                break;
            }
            ninsts += static_cast<unsigned>(next_branch - pos) + 1;
            pos = next_branch + 1;
            ++h;
            if (!trace->takenAt(next_branch)) {
                // Not-taken ⇒ conditional: the direction predictor is
                // the only per-branch state it updates, and only the
                // pc column is needed (see warmBranch).
                warmDirection(trace->pcAt(next_branch), false);
                if (ninsts >= max_insts)
                    break;
                continue;
            }
            trace->read(next_branch, inst);
            warmBranch(inst);
            break;
        }

        // Content-only memory warming: demand touches install the same
        // blocks as detailed fetch, and the prefetcher's warm hook
        // replays its content effects (fills, pollution, recorded
        // metadata) without any timing state.
        const BlockRange blocks = blockRangeOf(start_pc, ninsts);
        for (const Addr block : blocks) {
            if (block == last_block)
                continue;
            last_block = block;
            const bool hit = mem.warmTouch(block, now);
            if (pf != nullptr)
                pf->onWarmAccess(block, now, /*miss=*/!hit);
        }
        now += std::max<Counter>(ninsts, 1);
    }

    const Counter consumed = pos - start;
    instsStat_->inc(consumed);
    engine_.skipReplay(consumed);
    return consumed;
}

Counter
Bpu::touchStreamGenerated(Counter insts, InstMemory &mem,
                          InstPrefetcher *pf, Cycle &now)
{
    // Mirror of the trace-column walk above, consuming the engine
    // live. Region boundaries (taken branches, the detailed-mode
    // length cap) and every warm call match instruction for
    // instruction, so a trace-cache bypass leaves bit-identical state.
    const unsigned max_insts = params_.maxRegionInsts;
    Addr last_block = ~Addr{0};
    Counter consumed = 0;

    while (consumed < insts) {
        const Addr start_pc = engine_.peek().pc;
        unsigned ninsts = 0;
        while (true) {
            const DynInst &di = engine_.next();
            ++ninsts;
            if (di.kind == BranchKind::None) {
                if (ninsts >= max_insts)
                    break;
                continue;
            }
            if (!di.taken) {
                warmDirection(di.pc, false);
                if (ninsts >= max_insts)
                    break;
                continue;
            }
            warmBranch(di);
            break;
        }

        const BlockRange blocks = blockRangeOf(start_pc, ninsts);
        for (const Addr block : blocks) {
            if (block == last_block)
                continue;
            last_block = block;
            const bool hit = mem.warmTouch(block, now);
            if (pf != nullptr)
                pf->onWarmAccess(block, now, /*miss=*/!hit);
        }
        now += std::max<Counter>(ninsts, 1);
        consumed += ninsts;
    }

    instsStat_->inc(consumed);
    return consumed;
}

void
Bpu::warmBranch(const DynInst &inst)
{
    // Mirror handleBranch's per-branch state updates without any BTB
    // lookup or timing. These structures are updated on *every*
    // encounter in the detailed path (no lookup-driven recency to
    // distort), and the direction predictor's history/meta state feeds
    // the misprediction rate that FDP's error EWMA integrates over
    // ~20k instructions — longer than the full-fidelity window — so
    // leaving them frozen turns each window's relearn storm into a
    // persistent prefetch-throttle bias.
    switch (inst.kind) {
      case BranchKind::Cond:
        warmDirection(inst.pc, inst.taken);
        break;
      case BranchKind::Call:
        ras_.push(inst.fallThrough());
        break;
      case BranchKind::Return:
        (void)ras_.pop();
        break;
      case BranchKind::IndJump:
      case BranchKind::IndCall:
        itc_.update(inst.pc, inst.target);
        if (isCall(inst.kind))
            ras_.push(inst.fallThrough());
        break;
      case BranchKind::Uncond:
      case BranchKind::None:
        break;
    }
    if (inst.taken)
        btb_.warmTakenBranch(inst.pc, inst.kind,
                             hasDirectTarget(inst.kind) ? inst.target : 0);
}

Counter
Bpu::skipStream(Counter insts, Cycle &now)
{
    const TraceBuffer *trace = engine_.replayBuffer();
    if (trace == nullptr) {
        // Generation mode: generate and discard. Bit-identical to the
        // replay-cursor skip — the subsequent stream is the same.
        engine_.fastForward(insts);
        instsStat_->inc(insts);
        now += insts;
        return insts;
    }
    if (engine_.peekPending())
        return 0;
    const Counter available = trace->size() - engine_.replayCursor();
    const Counter consumed = std::min(insts, available);
    instsStat_->inc(consumed);
    engine_.skipReplay(consumed);
    now += consumed;
    return consumed;
}

} // namespace cfl
