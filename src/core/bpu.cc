#include "core/bpu.hh"

#include "common/logging.hh"

namespace cfl
{

std::vector<Addr>
FetchRegion::blocks() const
{
    std::vector<Addr> out;
    for (const Addr b : blockRange())
        out.push_back(b);
    return out;
}

Bpu::Bpu(const BpuParams &params, Btb &btb, DirectionPredictor &direction,
         ReturnAddressStack &ras, IndirectTargetCache &itc,
         ExecEngine &engine, InstMemory *mem)
    : params_(params),
      btb_(btb),
      direction_(direction),
      ras_(ras),
      itc_(itc),
      engine_(engine),
      mem_(mem),
      instsStat_(&stats_.scalar("insts")),
      branchesStat_(&stats_.scalar("branches")),
      takenLookupsStat_(&stats_.scalar("takenBranchLookups")),
      regionCapEndsStat_(&stats_.scalar("regionCapEnds")),
      btbL2StallStat_(&stats_.scalar("btbLevel2StallCycles")),
      btbTakenMissesStat_(&stats_.scalar("btbTakenMisses")),
      misfetchesStat_(&stats_.scalar("misfetches")),
      condMispredictsStat_(&stats_.scalar("condMispredicts")),
      rasMispredictsStat_(&stats_.scalar("rasMispredicts")),
      indirectMispredictsStat_(&stats_.scalar("indirectMispredicts"))
{
}

void
Bpu::resolveMisfetchedBranch(const DynInst &inst, Cycle now)
{
    // Decode discovers the branch; execute resolves it. Keep the
    // speculative structures consistent and install the entry so the
    // next encounter hits (taken branches only: a BTB holds targets of
    // taken branches).
    if (inst.kind == BranchKind::Cond)
        direction_.update(inst.pc, inst.taken);
    if (isCall(inst.kind))
        ras_.push(inst.fallThrough());
    if (inst.kind == BranchKind::Return)
        (void)ras_.pop();
    if (usesIndirectPredictor(inst.kind))
        itc_.update(inst.pc, inst.target);
    if (inst.taken) {
        btb_.learn(inst.pc, inst.kind,
                   hasDirectTarget(inst.kind) ? inst.target : 0, now);
        // The decode redirect restarts fetch at the target: its block
        // fill begins now, overlapping the misfetch bubble.
        if (mem_ != nullptr) {
            const Addr target_block = blockAlign(inst.target);
            if (!mem_->residentOrInFlight(target_block))
                mem_->prefetch(target_block, now);
        }
    }
}

BpuResult
Bpu::predictNextRegion(Cycle now)
{
    // Virtual-dispatch entry point; the typed core runner calls
    // predictNextRegionT<ConcreteBtb> directly.
    return predictNextRegionT<Btb>(now);
}

} // namespace cfl
