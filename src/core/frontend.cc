#include "core/frontend.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cfl
{

Frontend::Frontend(const FrontendParams &params, Bpu &bpu, InstMemory &mem,
                   InstPrefetcher *prefetcher)
    : params_(params),
      bpu_(bpu),
      mem_(mem),
      prefetcher_(prefetcher),
      fetchQueue_(params.fetchQueueRegions + 1),
      replay_(params.fetchQueueRegions + 1),
      backendDataStallStat_(&stats_.scalar("backendDataStallCycles")),
      backendStarvedStat_(&stats_.scalar("backendStarvedCycles")),
      fetchStallStat_(&stats_.scalar("fetchStallCycles")),
      fetchAheadFillsStat_(&stats_.scalar("fetchAheadFills")),
      fetchMissStallsStat_(&stats_.scalar("fetchMissStalls")),
      fetchMissStallCyclesStat_(&stats_.scalar("fetchMissStallCycles")),
      fetchedInstsStat_(&stats_.scalar("fetchedInsts")),
      redirectBubbleStat_(&stats_.scalar("redirectBubbleCycles")),
      redirectFlushesStat_(&stats_.scalar("redirectQueueFlushes")),
      fetchQueueEmptyStat_(&stats_.scalar("fetchQueueEmptyCycles")),
      fetchQueueFullStat_(&stats_.scalar("fetchQueueFullCycles")),
      bpuStallStat_(&stats_.scalar("bpuStallCycles")),
      regionsReplayedStat_(&stats_.scalar("regionsReplayed")),
      regionsProducedStat_(&stats_.scalar("regionsProduced"))
{
    cfl_assert(params.fetchQueueRegions > 0, "fetch queue needs depth");
    cfl_assert(params.fetchWidth > 0, "fetch width must be > 0");
    cfl_assert(params.retireWidth > 0, "retire width must be positive");
    cfl_assert(params.burstInsts > 0, "burst window must be positive");
}

void
Frontend::beginMeasurement()
{
    retiredBase_ = retired_;
    cycleBase_ = cycle_;
    stats_.resetAll();
}

void
Frontend::squashForFastForward()
{
    // In-flight pipeline contents are stale after a functional gap;
    // drop them rather than retire them, and clear every stall so the
    // post-gap detailed warmup starts from a clean (cold-pipeline,
    // warm-state) frontend.
    while (!fetchQueue_.empty())
        fetchQueue_.pop_front();
    while (!replay_.empty())
        replay_.pop_front();
    fetchOffset_ = 0;
    queueBranches_ = 0;
    curFetchBlock_ = ~0ull;
    decodeBufferInsts_ = 0;
    burstConsumed_ = 0;
    dataStallLeft_ = 0;
    fetchStallUntil_ = 0;
    stallIsBubble_ = false;
    bpuStallUntil_ = 0;
    fetchAheadIdle_ = false;
}

Counter
Frontend::fastForwardTouch(Counter insts)
{
    squashForFastForward();
    const Counter consumed =
        bpu_.touchStream(insts, mem_, prefetcher_, cycle_);
    retired_ += consumed;
    return consumed;
}

Counter
Frontend::fastForwardSkip(Counter insts)
{
    squashForFastForward();
    const Counter consumed = bpu_.skipStream(insts, cycle_);
    retired_ += consumed;
    return consumed;
}

void
Frontend::tickBackend()
{
    // Data-stall window: the OoO backend is blocked on memory; it
    // consumes nothing, and any front-end bubble in this window is free.
    if (dataStallLeft_ > 0) {
        --dataStallLeft_;
        backendDataStallStat_->inc();
        return;
    }

    // Consumption window: the backend pulls at full width. An empty
    // decode buffer here is a real front-end-supply loss.
    const unsigned take =
        std::min(params_.retireWidth, decodeBufferInsts_);
    if (take > 0) {
        decodeBufferInsts_ -= take;
        retired_ += take;
        burstConsumed_ += take;
        if (burstConsumed_ >= params_.burstInsts) {
            burstConsumed_ = 0;
            dataStallLeft_ = params_.dataStallCycles;
        }
    } else {
        backendStarvedStat_->inc();
    }
}

void
Frontend::fetchAheadUnderStall()
{
    // Table 1: 8 MSHRs. While the fetch unit waits on a fill, it keeps
    // walking the fetch queue and starts the fills it will need next,
    // overlapping their latencies (fetch-ahead under a miss). Squash
    // bubbles (deliveryBubble) do not fetch ahead: the queue contents
    // after a redirect are not yet trusted.
    if (fetchAheadMemoValid())
        return;
    unsigned outstanding = mem_.inFlightCount(cycle_);
    if (outstanding >= params_.fetchMshrs)
        return;
    bool issued = false;
    unsigned scanned_offset = fetchOffset_;
    unsigned regions_scanned = 0;
    for (const FetchRegion &region : fetchQueue_) {
        // Only the near-certain window: the region being fetched and the
        // next one. Anything further sits behind unresolved branch
        // predictions — in hardware that is wrong-path territory, which
        // the oracle-built queue cannot represent. Deeper lookahead is
        // exactly what a real prefetcher (FDP/SHIFT) adds.
        if (++regions_scanned > params_.fetchAheadRegions)
            break;
        if (region.numInsts > 0 && scanned_offset < region.numInsts) {
            const Addr first = blockAlign(
                region.startPc + scanned_offset * kInstBytes);
            const Addr last = blockAlign(
                region.startPc + (region.numInsts - 1) * kInstBytes);
            for (Addr block = first; block <= last;
                 block += kBlockBytes) {
                if (outstanding >= params_.fetchMshrs)
                    return; // window not fully scanned: no memo
                if (!mem_.residentOrInFlight(block)) {
                    fetchAheadFillsStat_->inc();
                    mem_.prefetch(block, cycle_);
                    issued = true;
                    ++outstanding;
                }
            }
        }
        scanned_offset = 0;
    }
    if (!issued) {
        // The whole window is resident or in flight; until something
        // is installed (the only way L1-I contents change) and while
        // the window itself is untouched, rescanning is a no-op.
        fetchAheadIdle_ = true;
        fetchAheadIdleSeq_ = mem_.installSeq();
    }
}

void
Frontend::tickFetch()
{
    if (fetchStallUntil_ > cycle_) {
        fetchStallStat_->inc();
        if (!stallIsBubble_)
            fetchAheadUnderStall();
        return;
    }

    // Active fetch moves the lookahead window (offset advance, region
    // pops), so any no-op memo for the old window is stale.
    fetchAheadIdle_ = false;

    unsigned credits = params_.fetchWidth;
    while (credits > 0 && !fetchQueue_.empty() &&
           decodeBufferInsts_ < params_.decodeBufferInsts) {
        FetchRegion &region = fetchQueue_.front();
        const Addr pc = region.startPc + fetchOffset_ * kInstBytes;
        const Addr block = blockAlign(pc);

        if (block != curFetchBlock_) {
            curFetchBlock_ = block;
            const InstMemory::FetchResult res =
                mem_.demandFetch(block, cycle_);
            // Miss handling precedes the access notification so the
            // SHIFT index lookup sees the *previous* occurrence of this
            // block, not the one being recorded now.
            if (!res.l1Hit && !res.wasInFlight && prefetcher_ != nullptr)
                prefetcher_->onDemandMiss(block, cycle_);
            if (prefetcher_ != nullptr)
                prefetcher_->onDemandAccess(block, cycle_);
            if (!res.l1Hit) {
                if (res.readyAt > cycle_) {
                    fetchStallUntil_ = res.readyAt;
                    stallIsBubble_ = false;
                    fetchMissStallsStat_->inc();
                    fetchMissStallCyclesStat_->inc(res.readyAt - cycle_);
                    fetchAheadUnderStall();
                    return;
                }
            }
        }

        // Consume instructions up to the region end, the block end, the
        // fetch width, and the decode-buffer space.
        const unsigned region_left = region.numInsts - fetchOffset_;
        const unsigned block_left =
            kInstsPerBlock - instIndexInBlock(pc);
        const unsigned buffer_left =
            params_.decodeBufferInsts - decodeBufferInsts_;
        const unsigned take =
            std::min({credits, region_left, block_left, buffer_left});
        cfl_assert(take > 0, "fetch made no progress");

        decodeBufferInsts_ += take;
        fetchOffset_ += take;
        credits -= take;
        fetchedInstsStat_->inc(take);

        if (fetchOffset_ >= region.numInsts) {
            queueBranches_ -= std::min(queueBranches_, region.numBranches);
            // A region ending in a misfetch or misprediction delivers a
            // redirect bubble: the squashed wrong-path slots occupy the
            // pipe for the penalty regardless of queue occupancy.
            const Cycle bubble = region.deliveryBubble;
            fetchQueue_.pop_front();
            fetchOffset_ = 0;
            // Force a block re-check on the next region: it may start in
            // a different block.
            curFetchBlock_ = ~0ull;
            if (bubble > 0) {
                fetchStallUntil_ =
                    std::max(fetchStallUntil_, cycle_ + bubble);
                stallIsBubble_ = true;
                redirectBubbleStat_->inc(bubble);
                // The redirect squashes everything younger in the fetch
                // queue; those regions re-emit from the BPU one per
                // cycle (post-redirect lockstep refill).
                if (!fetchQueue_.empty()) {
                    redirectFlushesStat_->inc();
                    while (!fetchQueue_.empty()) {
                        replay_.push_back(fetchQueue_.front());
                        fetchQueue_.pop_front();
                    }
                    queueBranches_ = 0;
                }
                break;
            }
        } else if (credits > 0) {
            // Crossed into the next block of the same region.
            continue;
        }
    }

    if (fetchQueue_.empty())
        fetchQueueEmptyStat_->inc();
}

void
Frontend::tick()
{
    tickImpl<Btb>();
}

} // namespace cfl
