#include "core/functional.hh"

#include <bit>

#include "common/logging.hh"

namespace cfl
{

FunctionalDriver::FunctionalDriver(ExecEngine &engine, Btb &btb,
                                   InstMemory *mem,
                                   InstPrefetcher *prefetcher,
                                   const Predecoder &predecoder)
    : engine_(engine),
      btb_(btb),
      mem_(mem),
      prefetcher_(prefetcher),
      predecoder_(predecoder)
{
    // Hooks are installed whenever an L1-I exists: block-hook BTBs
    // (AirBTB) consume them, and the driver's Table-2 residency tracking
    // needs fill/evict visibility for every design.
    if (mem_ != nullptr) {
        mem_->setFillHook(
            InstMemory::FillHook::bind<&FunctionalDriver::fillHook>(this));
        mem_->setEvictHook(
            InstMemory::EvictHook::bind<&FunctionalDriver::evictHook>(
                this));
    }
}

void
FunctionalDriver::fillHook(Addr block, bool from_prefetch, Cycle ready)
{
    onFill(block, from_prefetch, ready, measuring_);
}

void
FunctionalDriver::evictHook(Addr block)
{
    onEvict(block, measuring_);
}

void
FunctionalDriver::onFill(Addr block, bool from_prefetch, Cycle ready,
                         bool measuring)
{
    const PredecodedBlock pre =
        predecoder_.scan(engine_.program().image, block);
    btb_.onBlockFill(pre, from_prefetch, ready);

    if (measuring && !from_prefetch) {
        ++res_.demandFilledBlocks;
        res_.staticBranchesInFilled += pre.numBranches();
    }
    residentTaken_[block];  // open a residency window
}

void
FunctionalDriver::onEvict(Addr block, bool measuring)
{
    btb_.onBlockEvict(block);

    const std::uint16_t *taken = residentTaken_.find(block);
    if (taken != nullptr) {
        if (measuring) {
            ++res_.residencies;
            res_.dynamicTakenDistinct += std::popcount(*taken);
        }
        residentTaken_.erase(block);
    }
}

void
FunctionalDriver::step(bool measuring)
{
    const DynInst inst = engine_.next();
    now_ = static_cast<Cycle>(engine_.instCount() * cyclesPerInst_);

    if (measuring)
        ++res_.insts;

    // Block-granularity L1-I access stream.
    const Addr block = blockAlign(inst.pc);
    if (mem_ != nullptr && block != curBlock_) {
        curBlock_ = block;
        const auto fetch = mem_->demandFetch(block, now_);
        if (measuring)
            ++res_.l1iAccesses;
        if (!fetch.l1Hit && !fetch.wasInFlight) {
            if (measuring)
                ++res_.l1iMisses;
            // Miss first, access second: the SHIFT index must resolve to
            // the previous occurrence of this block in the history.
            if (prefetcher_ != nullptr)
                prefetcher_->onDemandMiss(block, now_);
        }
        if (prefetcher_ != nullptr)
            prefetcher_->onDemandAccess(block, now_);
    }

    if (!inst.isBranch())
        return;
    if (measuring)
        ++res_.branches;

    const BtbLookupResult hit = btb_.lookup(inst, now_);
    if (inst.taken) {
        if (measuring)
            ++res_.takenLookups;
        if (!hit.hit) {
            if (measuring)
                ++res_.btbMisses;
            btb_.learn(inst.pc, inst.kind,
                       hasDirectTarget(inst.kind) ? inst.target : 0, now_);
        }
        // Table 2 dynamic density: distinct taken branches touched while
        // the block is resident.
        if (mem_ != nullptr) {
            if (std::uint16_t *taken = residentTaken_.find(block))
                *taken |= static_cast<std::uint16_t>(
                    1u << instIndexInBlock(inst.pc));
        }
    }
}

FunctionalResult
FunctionalDriver::run(const FunctionalConfig &config)
{
    cyclesPerInst_ = config.cyclesPerInst;
    res_ = FunctionalResult{};

    measuring_ = false;
    for (std::uint64_t i = 0; i < config.warmupInsts; ++i)
        step(false);

    measuring_ = true;
    for (std::uint64_t i = 0; i < config.measureInsts; ++i)
        step(true);

    // Close still-open residency windows so dynamic density covers the
    // whole measurement.
    residentTaken_.forEach([this](Addr, const std::uint16_t &taken) {
        ++res_.residencies;
        res_.dynamicTakenDistinct += std::popcount(taken);
    });
    residentTaken_.clear();

    return res_;
}

} // namespace cfl
