/**
 * @file
 * Functional (timing-free) front-end driver for miss-coverage studies.
 *
 * The paper's coverage experiments (Figures 1, 8, 9, 10 and the MPKI
 * analyses) depend on *what* hits and misses, not on cycle timing. This
 * driver walks the oracle instruction stream, performs BTB lookups for
 * every branch and L1-I accesses for every block transition, drives the
 * prefetcher and Confluence fill hooks, and counts events. A pseudo-clock
 * of one cycle per instruction orders latency-sensitive behaviour
 * (PhantomBTB group arrivals, SHIFT history-read delays) realistically
 * without a pipeline model.
 *
 * It also measures Table 2's branch densities: static branches per
 * demand-fetched block (predecode count at fill) and distinct
 * taken-executed branches per block residency (dynamic).
 */

#ifndef CFL_CORE_FUNCTIONAL_HH
#define CFL_CORE_FUNCTIONAL_HH

#include <cstdint>

#include "btb/btb.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "isa/predecoder.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"
#include "trace/engine.hh"

namespace cfl
{

/** Functional-run configuration. */
struct FunctionalConfig
{
    std::uint64_t warmupInsts = 2'000'000;
    std::uint64_t measureInsts = 4'000'000;
    double cyclesPerInst = 1.0;  ///< pseudo-clock rate
};

/** Counters gathered during the measurement window. */
struct FunctionalResult
{
    Counter insts = 0;
    Counter branches = 0;
    Counter takenLookups = 0;
    Counter btbMisses = 0;
    Counter l1iAccesses = 0;
    Counter l1iMisses = 0;

    // Table 2 densities.
    Counter demandFilledBlocks = 0;
    Counter staticBranchesInFilled = 0;
    Counter residencies = 0;
    Counter dynamicTakenDistinct = 0;

    double btbMpki() const
    {
        return insts == 0 ? 0.0 : 1000.0 * btbMisses / insts;
    }
    double l1iMpki() const
    {
        return insts == 0 ? 0.0 : 1000.0 * l1iMisses / insts;
    }
    double staticDensity() const
    {
        return demandFilledBlocks == 0
            ? 0.0
            : static_cast<double>(staticBranchesInFilled) /
                  demandFilledBlocks;
    }
    double dynamicDensity() const
    {
        return residencies == 0
            ? 0.0
            : static_cast<double>(dynamicTakenDistinct) / residencies;
    }
};

/**
 * Functional front-end driver.
 *
 * The caller owns the BTB, the instruction memory (optional: pass
 * nullptr for BTB-only studies such as Figure 1), and the prefetcher
 * (optional). If the BTB wants block hooks and a memory is provided, the
 * driver wires L1-I fill/evict events through the predecoder into the
 * BTB — the Confluence synchronization path.
 */
class FunctionalDriver
{
  public:
    FunctionalDriver(ExecEngine &engine, Btb &btb, InstMemory *mem,
                     InstPrefetcher *prefetcher,
                     const Predecoder &predecoder);

    /** Run warmup then the measurement window; returns the counters. */
    FunctionalResult run(const FunctionalConfig &config);

  private:
    /** Advance one instruction; @p measuring controls counting. */
    void step(bool measuring);

    void onFill(Addr block, bool from_prefetch, Cycle ready, bool measuring);
    void onEvict(Addr block, bool measuring);

    /** Hook-shaped adapters bound into the InstMemory delegates. */
    void fillHook(Addr block, bool from_prefetch, Cycle ready);
    void evictHook(Addr block);

    ExecEngine &engine_;
    Btb &btb_;
    InstMemory *mem_;
    InstPrefetcher *prefetcher_;
    const Predecoder &predecoder_;

    Cycle now_ = 0;
    double cyclesPerInst_ = 1.0;
    Addr curBlock_ = ~0ull;
    FunctionalResult res_;
    bool measuring_ = false;

    /**
     * Distinct taken branches per resident block (Table 2 dynamic). A
     * block holds at most 16 instructions, so the distinct-branch set is
     * a 16-bit bitmap in a flat table instead of a hash-of-hash-sets.
     */
    FlatMap<std::uint16_t> residentTaken_;
};

} // namespace cfl

#endif // CFL_CORE_FUNCTIONAL_HH
