/**
 * @file
 * Cycle-level front-end model of one core.
 *
 * Pipeline structure per Table 1 / Section 4.1:
 *
 *   BPU --(fetch queue, 6 basic blocks)--> fetch unit --(decode buffer)
 *      --> backend consumer
 *
 * Per cycle:
 *  1. the backend consumes instructions from the decode buffer in
 *     data-stall/burst alternation (see FrontendParams); the decode
 *     buffer models the decoupling slack of the decode/rename queues
 *     (short fetch bubbles are absorbed, long ones are not);
 *  2. the fetch unit reads up to `fetchWidth` instructions of the head
 *     fetch region from the L1-I, stalling on block misses until the
 *     fill completes (fills already in flight — i.e. prefetched — expose
 *     only their residual latency);
 *  3. the BPU, unless stalled by a misfetch/misprediction bubble or a
 *     second-level BTB access, emits one fetch region into the queue.
 *
 * "Performance" is instructions retired per cycle — the paper's metric —
 * with the backend rate equal in every configuration, so all deltas come
 * from front-end behaviour.
 */

#ifndef CFL_CORE_FRONTEND_HH
#define CFL_CORE_FRONTEND_HH

#include "common/ring.hh"
#include "core/bpu.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"

namespace cfl
{

/**
 * Front-end pipeline tunables.
 *
 * The backend is a bursty consumer modeling a 3-way OoO core on a
 * memory-bound server workload: it consumes `retireWidth` instructions
 * per cycle for a window, then sits in a data-stall for
 * `dataStallCycles` after every `burstInsts` consumed. Front-end bubbles
 * overlapping data stalls are hidden (the OoO window drains); bubbles
 * overlapping consumption windows cost real slots. The sustained IPC
 * ceiling is burstInsts / (burstInsts/retireWidth + dataStallCycles).
 */
struct FrontendParams
{
    unsigned fetchQueueRegions = 6;   ///< Table 1: six basic blocks
    unsigned fetchWidth = 6;          ///< insts/cycle L1-I -> decode
    unsigned decodeBufferInsts = 64;  ///< decode/rename decoupling slack
    unsigned fetchMshrs = 8;          ///< Table 1: 8 MSHRs (fetch-ahead)
    unsigned fetchAheadRegions = 2;   ///< fetch-ahead lookahead window
    unsigned retireWidth = 3;         ///< Table 1: 3-way core
    unsigned burstInsts = 24;         ///< consumed per data-stall period
    unsigned dataStallCycles = 6;     ///< backend data-stall window
};

/** One core's front end. */
class Frontend
{
  public:
    /** @param prefetcher may be nullptr (no instruction prefetching) */
    Frontend(const FrontendParams &params, Bpu &bpu, InstMemory &mem,
             InstPrefetcher *prefetcher);

    /** Advance one cycle. */
    void tick();

    /** Instructions retired so far. */
    Counter retired() const { return retired_; }

    /** Cycles simulated so far. */
    Cycle cycles() const { return cycle_; }

    /** Reset measurement counters (after warmup), keeping all
     *  microarchitectural state warm. */
    void beginMeasurement();

    /** Retired instructions and cycles since beginMeasurement(). */
    Counter measuredRetired() const { return retired_ - retiredBase_; }
    Cycle measuredCycles() const { return cycle_ - cycleBase_; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    void tickBackend();
    void tickFetch();
    void tickBpu();
    void fetchAheadUnderStall();

    FrontendParams params_;
    Bpu &bpu_;
    InstMemory &mem_;
    InstPrefetcher *prefetcher_;

    RingBuffer<FetchRegion> fetchQueue_;
    unsigned fetchOffset_ = 0;      ///< insts consumed of the head region
    unsigned queueBranches_ = 0;    ///< unresolved predictions in queue

    /**
     * Regions squashed from the fetch queue by a redirect, awaiting
     * re-emission by the BPU at one per cycle. In hardware the queue
     * holds wrong-path regions at a redirect and is flushed; the correct
     * path is then re-predicted region by region. Re-emission models
     * that lockstep refill without double-walking the oracle stream.
     */
    RingBuffer<FetchRegion> replay_;
    Addr curFetchBlock_ = ~0ull;    ///< block the fetch unit last touched

    unsigned decodeBufferInsts_ = 0;
    unsigned burstConsumed_ = 0;   ///< insts consumed since last stall
    unsigned dataStallLeft_ = 0;   ///< backend data-stall cycles left

    Cycle cycle_ = 0;
    Cycle fetchStallUntil_ = 0;
    bool stallIsBubble_ = false;  ///< redirect bubble (no fetch-ahead)
    Cycle bpuStallUntil_ = 0;

    Counter retired_ = 0;
    Counter retiredBase_ = 0;
    Cycle cycleBase_ = 0;

    StatSet stats_{"frontend"};

    // Per-cycle counters resolved once (StatSet nodes are stable).
    Stat *backendDataStallStat_;
    Stat *backendStarvedStat_;
    Stat *fetchStallStat_;
    Stat *fetchAheadFillsStat_;
    Stat *fetchMissStallsStat_;
    Stat *fetchMissStallCyclesStat_;
    Stat *fetchedInstsStat_;
    Stat *redirectBubbleStat_;
    Stat *redirectFlushesStat_;
    Stat *fetchQueueEmptyStat_;
    Stat *fetchQueueFullStat_;
    Stat *bpuStallStat_;
    Stat *regionsReplayedStat_;
    Stat *regionsProducedStat_;
};

} // namespace cfl

#endif // CFL_CORE_FRONTEND_HH
