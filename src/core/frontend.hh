/**
 * @file
 * Cycle-level front-end model of one core.
 *
 * Pipeline structure per Table 1 / Section 4.1:
 *
 *   BPU --(fetch queue, 6 basic blocks)--> fetch unit --(decode buffer)
 *      --> backend consumer
 *
 * Per cycle:
 *  1. the backend consumes instructions from the decode buffer in
 *     data-stall/burst alternation (see FrontendParams); the decode
 *     buffer models the decoupling slack of the decode/rename queues
 *     (short fetch bubbles are absorbed, long ones are not);
 *  2. the fetch unit reads up to `fetchWidth` instructions of the head
 *     fetch region from the L1-I, stalling on block misses until the
 *     fill completes (fills already in flight — i.e. prefetched — expose
 *     only their residual latency);
 *  3. the BPU, unless stalled by a misfetch/misprediction bubble or a
 *     second-level BTB access, emits one fetch region into the queue.
 *
 * "Performance" is instructions retired per cycle — the paper's metric —
 * with the backend rate equal in every configuration, so all deltas come
 * from front-end behaviour.
 */

#ifndef CFL_CORE_FRONTEND_HH
#define CFL_CORE_FRONTEND_HH

#include <algorithm>
#include <cstdlib>

#include "common/ring.hh"
#include "core/bpu.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"

namespace cfl
{

/**
 * Front-end pipeline tunables.
 *
 * The backend is a bursty consumer modeling a 3-way OoO core on a
 * memory-bound server workload: it consumes `retireWidth` instructions
 * per cycle for a window, then sits in a data-stall for
 * `dataStallCycles` after every `burstInsts` consumed. Front-end bubbles
 * overlapping data stalls are hidden (the OoO window drains); bubbles
 * overlapping consumption windows cost real slots. The sustained IPC
 * ceiling is burstInsts / (burstInsts/retireWidth + dataStallCycles).
 */
struct FrontendParams
{
    unsigned fetchQueueRegions = 6;   ///< Table 1: six basic blocks
    unsigned fetchWidth = 6;          ///< insts/cycle L1-I -> decode
    unsigned decodeBufferInsts = 64;  ///< decode/rename decoupling slack
    unsigned fetchMshrs = 8;          ///< Table 1: 8 MSHRs (fetch-ahead)
    unsigned fetchAheadRegions = 2;   ///< fetch-ahead lookahead window
    unsigned retireWidth = 3;         ///< Table 1: 3-way core
    unsigned burstInsts = 24;         ///< consumed per data-stall period
    unsigned dataStallCycles = 6;     ///< backend data-stall window
};

/** One core's front end. */
class Frontend
{
  public:
    /** @param prefetcher may be nullptr (no instruction prefetching) */
    Frontend(const FrontendParams &params, Bpu &bpu, InstMemory &mem,
             InstPrefetcher *prefetcher);

    /** Advance one cycle. */
    void tick();

    /**
     * tick() with the BTB's concrete type known at compile time: the
     * BPU region walk devirtualizes (see Bpu::predictNextRegionT).
     * Bit-identical to tick().
     */
    template <typename BtbT> void tickImpl();

    /**
     * Advance cycles until measuredRetired() >= @p target, using the
     * typed tick plus a quiet-window fast path: while the fetch unit
     * is stalled on a fill AND the BPU can make no progress (stalled
     * or queue full) AND fetch-ahead is provably a no-op (redirect
     * bubble, or the lookahead window scanned clean since the last
     * install), a cycle only advances the backend and the three stall
     * counters — so those cycles run without touching the fetch path
     * at all. Bit-identical to calling tick() in a loop.
     */
    template <typename BtbT> void runUntil(Counter target);

    /**
     * Functionally advance at least @p insts instructions without
     * cycle-level timing (SMARTS functional warming). The decoupled
     * pipeline state (fetch queue, decode buffer, stalls) is squashed —
     * a long functional gap makes it stale, and the detailed warmup
     * before the next measured interval refills it — then the BPU walks
     * the oracle stream region by region, training the BTB, direction
     * predictor, RAS, and ITC exactly as detailed mode would, touching
     * every fetched block in the L1-I/LLC, and feeding the prefetcher
     * the same region/outcome/access events. Nominal time advances at
     * ~1 inst/cycle so fill/prefetch latencies span about the same
     * instruction distance as detailed mode; no stall or backend
     * timing is simulated.
     * May overshoot by up to one region (a region is never split).
     */
    template <typename BtbT> void fastForward(Counter insts);

    /**
     * Touch-only fast-forward of ~@p insts instructions (see
     * Bpu::touchStream): advances the stream keeping caches and
     * prefetch metadata warm but leaving predictor structures frozen.
     * Only used for stream distance that a full-fidelity fastForward()
     * window still separates from the next measured interval. Returns
     * instructions actually consumed (possibly 0 — e.g. live
     * generation mode); the caller covers the rest with fastForward().
     */
    Counter fastForwardTouch(Counter insts);

    /**
     * Pure stream skip of up to @p insts instructions (see
     * Bpu::skipStream): no state is warmed at all. Only used for
     * stream distance beyond the touch window — every block the
     * skipped stretch would install is re-installed by the touch
     * window that always follows. Returns instructions actually
     * consumed (possibly 0).
     */
    Counter fastForwardSkip(Counter insts);

    /** Instructions retired so far. */
    Counter retired() const { return retired_; }

    /** Cycles simulated so far. */
    Cycle cycles() const { return cycle_; }

    /** Reset measurement counters (after warmup), keeping all
     *  microarchitectural state warm. */
    void beginMeasurement();

    /** Retired instructions and cycles since beginMeasurement(). */
    Counter measuredRetired() const { return retired_ - retiredBase_; }
    Cycle measuredCycles() const { return cycle_ - cycleBase_; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    void tickBackend();
    void tickFetch();
    template <typename BtbT> void tickBpuImpl();
    void fetchAheadUnderStall();
    void squashForFastForward();

    /**
     * True while the last full fetch-ahead scan found every block in
     * the lookahead window resident or in flight and nothing has been
     * installed since: the scan is a provable no-op. Cleared whenever
     * the window can change (active fetch, a region entering the
     * window) and implicitly by any install (installSeq moves on).
     */
    bool
    fetchAheadMemoValid() const
    {
        return fetchAheadIdle_ && mem_.installSeq() == fetchAheadIdleSeq_;
    }

    FrontendParams params_;
    Bpu &bpu_;
    InstMemory &mem_;
    InstPrefetcher *prefetcher_;

    RingBuffer<FetchRegion> fetchQueue_;
    unsigned fetchOffset_ = 0;      ///< insts consumed of the head region
    unsigned queueBranches_ = 0;    ///< unresolved predictions in queue

    /**
     * Regions squashed from the fetch queue by a redirect, awaiting
     * re-emission by the BPU at one per cycle. In hardware the queue
     * holds wrong-path regions at a redirect and is flushed; the correct
     * path is then re-predicted region by region. Re-emission models
     * that lockstep refill without double-walking the oracle stream.
     */
    RingBuffer<FetchRegion> replay_;
    Addr curFetchBlock_ = ~0ull;    ///< block the fetch unit last touched

    unsigned decodeBufferInsts_ = 0;
    unsigned burstConsumed_ = 0;   ///< insts consumed since last stall
    unsigned dataStallLeft_ = 0;   ///< backend data-stall cycles left

    Cycle cycle_ = 0;
    Cycle fetchStallUntil_ = 0;
    bool stallIsBubble_ = false;  ///< redirect bubble (no fetch-ahead)
    Cycle bpuStallUntil_ = 0;

    bool fetchAheadIdle_ = false;       ///< see fetchAheadMemoValid()
    std::uint64_t fetchAheadIdleSeq_ = 0;

    Counter retired_ = 0;
    Counter retiredBase_ = 0;
    Cycle cycleBase_ = 0;

    StatSet stats_{"frontend"};

    // Per-cycle counters resolved once (StatSet nodes are stable).
    Stat *backendDataStallStat_;
    Stat *backendStarvedStat_;
    Stat *fetchStallStat_;
    Stat *fetchAheadFillsStat_;
    Stat *fetchMissStallsStat_;
    Stat *fetchMissStallCyclesStat_;
    Stat *fetchedInstsStat_;
    Stat *redirectBubbleStat_;
    Stat *redirectFlushesStat_;
    Stat *fetchQueueEmptyStat_;
    Stat *fetchQueueFullStat_;
    Stat *bpuStallStat_;
    Stat *regionsReplayedStat_;
    Stat *regionsProducedStat_;
};

template <typename BtbT>
inline void
Frontend::tickBpuImpl()
{
    if (bpuStallUntil_ > cycle_) {
        bpuStallStat_->inc();
        return;
    }
    if (fetchQueue_.size() >= params_.fetchQueueRegions) {
        fetchQueueFullStat_->inc();
        return;
    }

    // Re-emit squashed regions first, one per cycle: the post-redirect
    // BPU re-predicts the correct path region by region. Second-level
    // BTB stalls do not recur (the first pass promoted the entries).
    if (!replay_.empty()) {
        FetchRegion region = replay_.front();
        replay_.pop_front();
        fetchQueue_.push_back(region);
        queueBranches_ += region.numBranches;
        regionsReplayedStat_->inc();
        if (fetchQueue_.size() <= params_.fetchAheadRegions)
            fetchAheadIdle_ = false; // region entered the scan window
        return;
    }

    const BpuResult res = bpu_.predictNextRegionT<BtbT>(cycle_);
    fetchQueue_.push_back(res.region);
    regionsProducedStat_->inc();
    if (fetchQueue_.size() <= params_.fetchAheadRegions)
        fetchAheadIdle_ = false; // region entered the scan window

    if (res.stall > 0)
        bpuStallUntil_ = cycle_ + res.stall;

    // Fetch-directed prefetching sees every enqueued region, along with
    // how many unresolved branch predictions sit ahead of it.
    if (prefetcher_ != nullptr) {
        prefetcher_->onFetchRegion(res.region.blockRange(),
                                   queueBranches_, cycle_);
        const unsigned errors =
            (res.misfetch ? 1u : 0u) + (res.mispredict ? 1u : 0u);
        prefetcher_->onBranchOutcome(res.region.numBranches, errors);
    }
    queueBranches_ += res.region.numBranches;
}

template <typename BtbT>
inline void
Frontend::tickImpl()
{
    ++cycle_;
    tickBackend();
    tickFetch();
    tickBpuImpl<BtbT>();
}

template <typename BtbT>
inline void
Frontend::fastForward(Counter insts)
{
    squashForFastForward();
    Counter done = 0;
    while (done < insts) {
        const BpuResult res = bpu_.predictNextRegionT<BtbT>(cycle_);
        // The prefetcher sees the region before the demand accesses, as
        // in detailed mode (the BPU emits ahead of the fetch unit), so
        // prefetched blocks are in flight when the demand touch lands.
        if (prefetcher_ != nullptr) {
            prefetcher_->onFetchRegion(res.region.blockRange(),
                                       /*unresolved_branches=*/0, cycle_);
            const unsigned errors =
                (res.misfetch ? 1u : 0u) + (res.mispredict ? 1u : 0u);
            prefetcher_->onBranchOutcome(res.region.numBranches, errors);
        }
        for (const Addr block : res.region.blockRange()) {
            const InstMemory::FetchResult fr =
                mem_.demandFetch(block, cycle_);
            if (prefetcher_ != nullptr) {
                if (!fr.l1Hit && !fr.wasInFlight)
                    prefetcher_->onDemandMiss(block, cycle_);
                prefetcher_->onDemandAccess(block, cycle_);
            }
        }
        // Advance nominal time at ~1 inst/cycle — within 2x of the
        // detailed-mode rate — so in-flight fills and prefetches land
        // after roughly the same instruction distance as they would in
        // detailed mode. One cycle per region (~6 insts) would make
        // latencies appear several times longer in instruction time,
        // biasing the cache state the next interval measures.
        cycle_ += std::max<Counter>(res.region.numInsts, 1);
        done += res.region.numInsts;
        retired_ += res.region.numInsts;
    }
}

template <typename BtbT>
inline void
Frontend::runUntil(Counter target)
{
    while (measuredRetired() < target) {
        tickImpl<BtbT>();

        // Quiet-window check for the cycles after this tick. The
        // conditions are invariant across quiet cycles (nothing below
        // installs blocks or touches the fetch queue), so they hoist
        // out of the skip loop.
        if (fetchStallUntil_ <= cycle_ + 1)
            continue;
        Cycle last = fetchStallUntil_ - 1;
        if (!(stallIsBubble_ || fetchAheadMemoValid())) {
            // Third quiet shape: the fetch-ahead scan starts by
            // checking MSHR occupancy and is a stat-free no-op at the
            // cap. With fetch and BPU quiet nothing issues new fills,
            // so occupancy cannot drop below the cap before the
            // earliest in-flight completion.
            const Cycle min_ready = mem_.minInFlightReady();
            if (mem_.inFlightSize() < params_.fetchMshrs ||
                min_ready <= cycle_ + 1)
                continue;
            last = std::min(last, min_ready - 1);
        }
        const bool queue_full =
            fetchQueue_.size() >= params_.fetchQueueRegions;

        // Last cycle of the quiet window: the fetch stall must still
        // hold, and without a full queue so must the BPU stall.
        if (!queue_full) {
            if (bpuStallUntil_ <= cycle_ + 1)
                continue;
            last = std::min(last, bpuStallUntil_ - 1);
        }

        // Quiet cycles, segmented. Only the backend does real work in
        // a quiet cycle, and while it is data-stalled or starved it
        // retires nothing, so those segments advance in one arithmetic
        // step with bulk stat increments; consumption cycles (at most
        // a decode buffer's worth) run the real tickBackend.
        while (cycle_ < last && measuredRetired() < target) {
            Cycle n;
            if (dataStallLeft_ > 0) {
                n = std::min<Cycle>(dataStallLeft_, last - cycle_);
                dataStallLeft_ -= n;
                backendDataStallStat_->inc(n);
            } else if (decodeBufferInsts_ == 0) {
                // Starved, and nothing arrives while fetch stalls.
                n = last - cycle_;
                backendStarvedStat_->inc(n);
            } else if (decodeBufferInsts_ >= params_.retireWidth) {
                // Full-width consumption is deterministic, so whole
                // runs of it advance arithmetically: every cycle
                // retires exactly retireWidth until the buffer can no
                // longer sustain the width, the burst window closes
                // (the data stall fires only on the cycle whose
                // cumulative consumption first reaches burstInsts, so
                // no intermediate cycle can trigger it), or the
                // measurement target is hit mid-window.
                const unsigned width = params_.retireWidth;
                const Cycle full = decodeBufferInsts_ / width;
                const Cycle to_burst =
                    (params_.burstInsts - burstConsumed_ + width - 1) /
                    width;
                const Cycle to_target =
                    (target - measuredRetired() + width - 1) / width;
                n = std::min({full, to_burst, to_target,
                              last - cycle_});
                if (n == 0) {
                    // last == cycle_ cannot happen (loop guard), so
                    // this is unreachable; keep the single-step tick as
                    // the safety net regardless.
                    ++cycle_;
                    tickBackend();
                    fetchStallStat_->inc();
                    (bpuStallUntil_ > cycle_ ? bpuStallStat_
                                             : fetchQueueFullStat_)
                        ->inc();
                    continue;
                }
                const unsigned insts = static_cast<unsigned>(n) * width;
                decodeBufferInsts_ -= insts;
                retired_ += insts;
                burstConsumed_ += insts;
                if (burstConsumed_ >= params_.burstInsts) {
                    burstConsumed_ = 0;
                    dataStallLeft_ = params_.dataStallCycles;
                }
            } else {
                ++cycle_;
                tickBackend();
                fetchStallStat_->inc();
                (bpuStallUntil_ > cycle_ ? bpuStallStat_
                                         : fetchQueueFullStat_)
                    ->inc();
                continue;
            }
            // The n skipped cycles are all fetch stalls; each is a BPU
            // stall while bpuStallUntil_ covers it and a full-queue
            // cycle after (the queue cannot drain mid-window).
            fetchStallStat_->inc(n);
            const Cycle bpu_cycles =
                bpuStallUntil_ > cycle_ + 1
                    ? std::min<Cycle>(bpuStallUntil_ - cycle_ - 1, n)
                    : 0;
            bpuStallStat_->inc(bpu_cycles);
            fetchQueueFullStat_->inc(n - bpu_cycles);
            cycle_ += n;
        }
    }
}

} // namespace cfl

#endif // CFL_CORE_FRONTEND_HH
