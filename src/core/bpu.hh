/**
 * @file
 * Branch prediction unit: the decoupled front-end component that emits
 * one fetch region (basic block) per cycle into the fetch queue
 * (Table 1 / Section 4.1).
 *
 * The BPU walks the oracle instruction stream and, at every branch,
 * performs the same lookups hardware would: BTB for branch identity and
 * direct targets, direction predictor for conditionals, RAS for returns,
 * ITC for indirects. Prediction events map to penalties:
 *
 *  - BTB miss on an actually-taken branch -> *misfetch*: the sequential
 *    fetch region is wrong, discovered in the first decode stage, costing
 *    a 4-cycle bubble (Section 4.1); the branch is learned at resolution.
 *  - direction / return / indirect target misprediction -> pipeline
 *    flush penalty (resolved at execute).
 *  - first-level BTB miss satisfied by a slower second level -> the
 *    second level's access latency as a BPU bubble (`stallCycles` from
 *    the BTB), the timeliness cost Confluence eliminates (Section 5.1).
 *
 * Because the model immediately re-synchronizes to the oracle path after
 * any mispredict, wrong-path fetch is represented by these bubbles rather
 * than simulated instruction-by-instruction — the standard trace-driven
 * front-end simplification.
 */

#ifndef CFL_CORE_BPU_HH
#define CFL_CORE_BPU_HH

#include <vector>

#include "branch/direction.hh"
#include "branch/indirect.hh"
#include "branch/ras.hh"
#include "btb/btb.hh"
#include "common/stats.hh"
#include "mem/hierarchy.hh"
#include "trace/engine.hh"

namespace cfl
{

/** BPU tunables (Table 1 / Section 4.1 defaults). */
struct BpuParams
{
    unsigned maxRegionInsts = 16;   ///< fetch-region length cap
    unsigned misfetchPenalty = 4;   ///< decode-stage redirect
    unsigned mispredictPenalty = 12; ///< execute-stage redirect
};

/** A fetch region: consecutive instructions ending at a taken branch. */
struct FetchRegion
{
    Addr startPc = 0;
    unsigned numInsts = 0;
    unsigned numBranches = 0;  ///< branch predictions made in this region

    /**
     * Pipeline bubble delivered *after* this region's instructions: the
     * squash/redirect cost of a misfetch (decode-stage) or misprediction
     * (execute-stage) ending the region. Charged at the fetch unit when
     * the region finishes, because the wrong-path slots travel through
     * the pipe regardless of fetch-queue occupancy.
     */
    Cycle deliveryBubble = 0;

    /** Blocks the region spans, in fetch order, as an allocation-free
     *  value range (regions always cover consecutive blocks). */
    BlockRange blockRange() const
    {
        return blockRangeOf(startPc, numInsts);
    }

    /** Block addresses as a vector (tests/analysis; the hot path uses
     *  blockRange()). */
    std::vector<Addr> blocks() const;
};

/** Result of one BPU prediction cycle. */
struct BpuResult
{
    FetchRegion region;
    Cycle stall = 0;       ///< BPU bubble (second-level BTB access)
    bool misfetch = false;
    bool mispredict = false;
};

/** The decoupled branch prediction unit. */
class Bpu
{
  public:
    /**
     * @param mem optional instruction memory: on a misfetch the decode
     *        redirect immediately restarts instruction fetch at the
     *        branch target, so the target's block fill begins during
     *        the misfetch bubble rather than when the fetch unit drains
     *        the queue to it.
     */
    Bpu(const BpuParams &params, Btb &btb, DirectionPredictor &direction,
        ReturnAddressStack &ras, IndirectTargetCache &itc,
        ExecEngine &engine, InstMemory *mem = nullptr);

    /** Produce the next fetch region by walking the oracle stream. */
    BpuResult predictNextRegion(Cycle now);

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** Oracle instructions consumed so far. */
    Counter instsConsumed() const { return stats_.get("insts"); }

  private:
    /** Resolution-time side effects of a branch the BPU did not predict
     *  (misfetch): trains predictors, fixes RAS/ITC, learns the BTB. */
    void resolveMisfetchedBranch(const DynInst &inst, Cycle now);

    BpuParams params_;
    Btb &btb_;
    DirectionPredictor &direction_;
    ReturnAddressStack &ras_;
    IndirectTargetCache &itc_;
    ExecEngine &engine_;
    InstMemory *mem_;
    StatSet stats_{"bpu"};

    // Per-instruction counters resolved once (StatSet nodes are stable).
    Stat *instsStat_;
    Stat *branchesStat_;
    Stat *takenLookupsStat_;
    Stat *regionCapEndsStat_;
    Stat *btbL2StallStat_;
    Stat *btbTakenMissesStat_;
    Stat *misfetchesStat_;
    Stat *condMispredictsStat_;
    Stat *rasMispredictsStat_;
    Stat *indirectMispredictsStat_;
};

} // namespace cfl

#endif // CFL_CORE_BPU_HH
