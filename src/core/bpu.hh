/**
 * @file
 * Branch prediction unit: the decoupled front-end component that emits
 * one fetch region (basic block) per cycle into the fetch queue
 * (Table 1 / Section 4.1).
 *
 * The BPU walks the oracle instruction stream and, at every branch,
 * performs the same lookups hardware would: BTB for branch identity and
 * direct targets, direction predictor for conditionals, RAS for returns,
 * ITC for indirects. Prediction events map to penalties:
 *
 *  - BTB miss on an actually-taken branch -> *misfetch*: the sequential
 *    fetch region is wrong, discovered in the first decode stage, costing
 *    a 4-cycle bubble (Section 4.1); the branch is learned at resolution.
 *  - direction / return / indirect target misprediction -> pipeline
 *    flush penalty (resolved at execute).
 *  - first-level BTB miss satisfied by a slower second level -> the
 *    second level's access latency as a BPU bubble (`stallCycles` from
 *    the BTB), the timeliness cost Confluence eliminates (Section 5.1).
 *
 * Because the model immediately re-synchronizes to the oracle path after
 * any mispredict, wrong-path fetch is represented by these bubbles rather
 * than simulated instruction-by-instruction — the standard trace-driven
 * front-end simplification.
 */

#ifndef CFL_CORE_BPU_HH
#define CFL_CORE_BPU_HH

#include <algorithm>
#include <vector>

#include "branch/direction.hh"
#include "branch/indirect.hh"
#include "branch/ras.hh"
#include "btb/btb.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"
#include "trace/engine.hh"
#include "trace/trace_buffer.hh"

namespace cfl
{

/** BPU tunables (Table 1 / Section 4.1 defaults). */
struct BpuParams
{
    unsigned maxRegionInsts = 16;   ///< fetch-region length cap
    unsigned misfetchPenalty = 4;   ///< decode-stage redirect
    unsigned mispredictPenalty = 12; ///< execute-stage redirect
};

/** A fetch region: consecutive instructions ending at a taken branch. */
struct FetchRegion
{
    Addr startPc = 0;
    unsigned numInsts = 0;
    unsigned numBranches = 0;  ///< branch predictions made in this region

    /**
     * Pipeline bubble delivered *after* this region's instructions: the
     * squash/redirect cost of a misfetch (decode-stage) or misprediction
     * (execute-stage) ending the region. Charged at the fetch unit when
     * the region finishes, because the wrong-path slots travel through
     * the pipe regardless of fetch-queue occupancy.
     */
    Cycle deliveryBubble = 0;

    /** Blocks the region spans, in fetch order, as an allocation-free
     *  value range (regions always cover consecutive blocks). */
    BlockRange blockRange() const
    {
        return blockRangeOf(startPc, numInsts);
    }

    /** Block addresses as a vector (tests/analysis; the hot path uses
     *  blockRange()). */
    std::vector<Addr> blocks() const;
};

/** Result of one BPU prediction cycle. */
struct BpuResult
{
    FetchRegion region;
    Cycle stall = 0;       ///< BPU bubble (second-level BTB access)
    bool misfetch = false;
    bool mispredict = false;
};

/** The decoupled branch prediction unit. */
class Bpu
{
  public:
    /**
     * @param mem optional instruction memory: on a misfetch the decode
     *        redirect immediately restarts instruction fetch at the
     *        branch target, so the target's block fill begins during
     *        the misfetch bubble rather than when the fetch unit drains
     *        the queue to it.
     */
    Bpu(const BpuParams &params, Btb &btb, DirectionPredictor &direction,
        ReturnAddressStack &ras, IndirectTargetCache &itc,
        ExecEngine &engine, InstMemory *mem = nullptr);

    /** Produce the next fetch region by walking the oracle stream. */
    BpuResult predictNextRegion(Cycle now);

    /**
     * predictNextRegion with the BTB's concrete type known at compile
     * time: the per-branch lookup devirtualizes, and when the engine is
     * replaying a buffered trace the walk jumps branch-to-branch over
     * the buffer's predecoded branch index instead of materializing
     * every non-branch instruction. Bit-identical to the virtual path.
     */
    template <typename BtbT>
    BpuResult predictNextRegionT(Cycle now);

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** Oracle instructions consumed so far. */
    Counter instsConsumed() const { return stats_.get("insts"); }

    /**
     * Touch-only functional advance of ~@p insts instructions over a
     * replayed trace (sampled fast-forward, far from any measured
     * interval): regions are derived from the predecode index's taken
     * branches and their blocks touched in @p mem, with @p pf seeing
     * each block transition through onWarmAccess — so long-lived
     * state (L1-I/LLC content, recorded prefetch metadata) sees every
     * access. Per-branch predictor state (direction predictor, RAS,
     * ITC, the BTB's large backing levels) is kept warm through
     * warmBranch; no BTB lookups, misprediction accounting, or
     * speculative prefetch-engine activity happens — those are
     * short-lived and relearned by the full-fidelity warming window
     * that always follows. @p now advances ~1 inst/cycle like
     * fastForward. May overshoot by up to one region; returns
     * instructions consumed. Over a buffered prefix the walk jumps
     * branch to branch through the trace columns; in generation mode
     * it consumes the engine live with the identical region/warming
     * sequence, so trace-cache hits and bypasses stay bit-identical
     * (only the speed differs). Returns short when the buffered
     * prefix ends — the caller covers the remainder.
     */
    Counter touchStream(Counter insts, InstMemory &mem,
                        InstPrefetcher *pf, Cycle &now);

    /**
     * Pure stream skip of up to @p insts instructions over a replayed
     * trace: the replay cursor advances with no state touched at all —
     * not even cache content. Used by sampled fast-forward for stream
     * distance beyond the touch window, where even content warming is
     * unnecessary (everything the skipped stretch would install is
     * re-installed by the touch window that always follows). @p now
     * advances ~1 inst/cycle. In generation mode the engine generates
     * and discards instead — slower, bit-identical. Returns
     * instructions skipped (short only at a buffered prefix's end).
     */
    Counter skipStream(Counter insts, Cycle &now);

  private:
    /** Generation-mode touchStream: the same region walk driven by
     *  live engine consumption instead of the trace columns. */
    Counter touchStreamGenerated(Counter insts, InstMemory &mem,
                                 InstPrefetcher *pf, Cycle &now);
    /**
     * Predict/train on one branch instruction; returns true when the
     * branch ends the region (taken, misfetch, or mispredict). Shared
     * by the scalar walk and the branch-index walk so the two paths
     * cannot drift.
     */
    template <typename BtbT>
    bool handleBranch(const DynInst &inst, Cycle now, BpuResult &out);

    /** Branch-index region walk over a buffered trace prefix. */
    template <typename BtbT>
    BpuResult predictRegionFromTrace(const TraceBuffer &trace, Cycle now);

    /** Resolution-time side effects of a branch the BPU did not predict
     *  (misfetch): trains predictors, fixes RAS/ITC, learns the BTB. */
    void resolveMisfetchedBranch(const DynInst &inst, Cycle now);

    /** Touch-tier per-branch warming: direction predictor, RAS, ITC,
     *  and the BTB's large-backing-level hook — no lookups, no timing.
     *  See the definition for why freezing these biases FDP. */
    void warmBranch(const DynInst &inst);

    /** Direction-predictor warming: predict() then update(), as on the
     *  (dominant) BTB-hit path — refreshes the component predictions
     *  meta trains on and advances the gshare history. Uses the fused
     *  non-virtual HybridPredictor::warm when available (always, in
     *  practice: every preset builds a HybridPredictor). */
    void
    warmDirection(Addr pc, bool outcome)
    {
        if (hybridDir_ != nullptr) {
            hybridDir_->warm(pc, outcome);
        } else {
            (void)direction_.predict(pc);
            direction_.update(pc, outcome);
        }
    }

    BpuParams params_;
    Btb &btb_;
    DirectionPredictor &direction_;
    /** Concrete type of direction_ when it is the standard hybrid —
     *  warming fast path only; never used on the measured path. */
    HybridPredictor *hybridDir_ = nullptr;
    ReturnAddressStack &ras_;
    IndirectTargetCache &itc_;
    ExecEngine &engine_;
    InstMemory *mem_;
    StatSet stats_{"bpu"};

    // Branch-index walk state: which trace the hint indexes into, and
    // the first entry of branchPositions() not yet consumed. The hint
    // only moves forward (the stream is consumed monotonically).
    const TraceBuffer *fastTrace_ = nullptr;
    std::uint64_t branchHint_ = 0;

    // Per-instruction counters resolved once (StatSet nodes are stable).
    Stat *instsStat_;
    Stat *branchesStat_;
    Stat *takenLookupsStat_;
    Stat *regionCapEndsStat_;
    Stat *btbL2StallStat_;
    Stat *btbTakenMissesStat_;
    Stat *misfetchesStat_;
    Stat *condMispredictsStat_;
    Stat *rasMispredictsStat_;
    Stat *indirectMispredictsStat_;
};

template <typename BtbT>
inline bool
Bpu::handleBranch(const DynInst &inst, Cycle now, BpuResult &out)
{
    branchesStat_->inc();
    ++out.region.numBranches;
    if (inst.taken)
        takenLookupsStat_->inc();

    const BtbLookupResult btb =
        static_cast<BtbT &>(btb_).lookup(inst, now);
    out.stall += btb.stallCycles;
    if (btb.stallCycles > 0)
        btbL2StallStat_->inc(btb.stallCycles);

    if (!btb.hit) {
        if (!inst.taken) {
            // The BTB cannot even identify this instruction as a
            // branch, so fetch falls through — which is correct.
            // Decode still trains the direction predictor.
            if (inst.kind == BranchKind::Cond)
                direction_.update(inst.pc, inst.taken);
            return false;
        }

        // Actually-taken branch absent from the BTB: the sequential
        // fetch region is wrong (misfetch). Paper Section 2.1: this
        // is the BTB-miss event.
        btbTakenMissesStat_->inc();
        misfetchesStat_->inc();
        resolveMisfetchedBranch(inst, now);
        out.misfetch = true;
        out.region.deliveryBubble += params_.misfetchPenalty;
        return true;
    }

    // BTB hit: predict with the full prediction unit.
    switch (inst.kind) {
      case BranchKind::Cond: {
        const bool predicted_taken = direction_.predict(inst.pc);
        direction_.update(inst.pc, inst.taken);
        if (predicted_taken != inst.taken) {
            condMispredictsStat_->inc();
            out.mispredict = true;
            out.region.deliveryBubble += params_.mispredictPenalty;
            return true;
        }
        // Correctly predicted taken ends the region (direct target from
        // the BTB entry is exact); not-taken keeps walking.
        return inst.taken;
      }

      case BranchKind::Uncond:
        return true;

      case BranchKind::Call:
        ras_.push(inst.fallThrough());
        return true;

      case BranchKind::Return: {
        const Addr predicted = ras_.pop();
        if (predicted != inst.target) {
            rasMispredictsStat_->inc();
            out.mispredict = true;
            out.region.deliveryBubble += params_.mispredictPenalty;
        }
        return true;
      }

      case BranchKind::IndJump:
      case BranchKind::IndCall: {
        const Addr predicted = itc_.predict(inst.pc);
        itc_.update(inst.pc, inst.target);
        if (isCall(inst.kind))
            ras_.push(inst.fallThrough());
        if (predicted != inst.target) {
            indirectMispredictsStat_->inc();
            out.mispredict = true;
            out.region.deliveryBubble += params_.mispredictPenalty;
        }
        return true;
      }

      case BranchKind::None:
        cfl_panic("branch with kind None");
    }
    return true; // unreachable
}

template <typename BtbT>
inline BpuResult
Bpu::predictRegionFromTrace(const TraceBuffer &trace, Cycle now)
{
    if (fastTrace_ != &trace) {
        // (Re)bind the hint to this trace: first branch at or after
        // the replay cursor.
        fastTrace_ = &trace;
        const std::uint32_t *pos = trace.branchPositions();
        branchHint_ =
            std::lower_bound(pos, pos + trace.numBranches(),
                             engine_.replayCursor()) -
            pos;
    }

    const std::uint64_t start = engine_.replayCursor();
    const std::uint64_t num_branches = trace.numBranches();
    const std::uint32_t *branch_pos = trace.branchPositions();
    const unsigned max_insts = params_.maxRegionInsts;

    // A scalar-path detour (peeked stream) only moves the cursor
    // forward, so advancing past consumed branches resynchronizes.
    while (branchHint_ < num_branches && branch_pos[branchHint_] < start)
        ++branchHint_;

    BpuResult out;
    out.region.startPc = trace.pcAt(start);

    std::uint64_t pos = start;
    unsigned insts = 0;
    DynInst inst;
    while (true) {
        // Non-branch instructions before the next branch contribute
        // nothing but the instruction count and the region-length cap,
        // so the walk consumes them as one arithmetic step.
        const std::uint64_t gap =
            branchHint_ < num_branches ? branch_pos[branchHint_] - pos
                                       : std::uint64_t{max_insts};
        if (insts + gap >= max_insts) {
            // Cap reached on a non-branch; any branch stays unconsumed
            // for the next region.
            pos += max_insts - insts;
            insts = max_insts;
            regionCapEndsStat_->inc();
            break;
        }

        pos = branch_pos[branchHint_] + std::uint64_t{1};
        insts += static_cast<unsigned>(gap) + 1;
        trace.read(branch_pos[branchHint_], inst);
        ++branchHint_;
        if (handleBranch<BtbT>(inst, now, out))
            break;
        if (insts >= max_insts) {
            regionCapEndsStat_->inc();
            break;
        }
    }

    out.region.numInsts = insts;
    instsStat_->inc(insts);
    engine_.skipReplay(pos - start);
    return out;
}

template <typename BtbT>
inline BpuResult
Bpu::predictNextRegionT(Cycle now)
{
    // Fast path: plain replay with the whole worst-case region inside
    // the buffered prefix (so the branch-index walk can never run off
    // the buffer or interleave with live generation).
    const TraceBuffer *trace = engine_.replayBuffer();
    if (trace != nullptr && !engine_.peekPending() &&
        engine_.replayCursor() + params_.maxRegionInsts <= trace->size())
        return predictRegionFromTrace<BtbT>(*trace, now);

    // Scalar walk: generation mode, a peeked stream, or the trace tail.
    BpuResult out;
    out.region.startPc = engine_.peek().pc;

    while (true) {
        const DynInst inst = engine_.next();
        ++out.region.numInsts;
        instsStat_->inc();

        if (!inst.isBranch()) {
            if (out.region.numInsts >= params_.maxRegionInsts) {
                // Region cap: continue sequentially next cycle.
                regionCapEndsStat_->inc();
                return out;
            }
            continue;
        }

        if (handleBranch<BtbT>(inst, now, out))
            return out;
        if (out.region.numInsts >= params_.maxRegionInsts) {
            regionCapEndsStat_->inc();
            return out;
        }
    }
}

} // namespace cfl

#endif // CFL_CORE_BPU_HH
