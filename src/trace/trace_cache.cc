#include "trace/trace_cache.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace cfl
{

namespace
{

/** Round a trace length up so nearby requests share one buffer. */
std::uint64_t
roundLength(std::uint64_t min_insts)
{
    constexpr std::uint64_t kGranule = 1ull << 16;
    return (min_insts + kGranule - 1) / kGranule * kGranule;
}

std::uint64_t
budgetFromEnv()
{
    constexpr std::uint64_t kDefaultMb = 512;
    const char *env = std::getenv("CONFLUENCE_TRACE_CACHE_MB");
    if (env == nullptr)
        return kDefaultMb << 20;
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || (end != nullptr && *end != '\0') || v < 0)
        cfl_fatal("CONFLUENCE_TRACE_CACHE_MB must be a non-negative "
                  "integer, got \"%s\"", env);
    return static_cast<std::uint64_t>(v) << 20;
}

} // namespace

/**
 * One cache slot. `buf` and `charged` are guarded by the cache's global
 * mutex; `genMutex` only serializes generation so concurrent acquires of
 * the same key build the trace once.
 */
struct TraceCache::Entry
{
    std::mutex genMutex;
    std::shared_ptr<const TraceBuffer> buf;
    std::uint64_t charged = 0;
    std::uint64_t lastUse = 0;
};

TraceCache::TraceCache(std::uint64_t budget_bytes)
    : budgetBytes_(budget_bytes)
{
}

void
TraceCache::setBudgetBytes(std::uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    budgetBytes_ = bytes;
    makeRoom(0);
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[key, entry] : entries_) {
        if (entry->buf != nullptr && entry->buf.use_count() == 1) {
            chargedBytes_ -= entry->charged;
            entry->charged = 0;
            entry->buf.reset();
        }
    }
}

std::uint64_t
TraceCache::budgetBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return budgetBytes_;
}

std::uint64_t
TraceCache::cachedBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return chargedBytes_;
}

std::uint64_t
TraceCache::lookups() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookups_;
}

std::uint64_t
TraceCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
TraceCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
TraceCache::bypasses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bypasses_;
}

bool
TraceCache::makeRoom(std::uint64_t needed, const Entry *exclude)
{
    // Caller holds mutex_. Drop idle buffers (the cache holds the only
    // reference) in LRU order until the new trace fits. @p exclude is
    // the entry being refreshed: its old buffer's charge is accounted
    // separately by the caller.
    while (chargedBytes_ + needed > budgetBytes_) {
        Entry *victim = nullptr;
        for (auto &[key, entry] : entries_) {
            if (entry.get() == exclude || entry->buf == nullptr ||
                entry->buf.use_count() != 1)
                continue;
            if (victim == nullptr || entry->lastUse < victim->lastUse)
                victim = entry.get();
        }
        if (victim == nullptr)
            return false;
        chargedBytes_ -= victim->charged;
        victim->charged = 0;
        victim->buf.reset();
    }
    return true;
}

std::shared_ptr<const TraceBuffer>
TraceCache::acquire(WorkloadId workload, std::uint64_t seed,
                    std::uint64_t min_insts)
{
    const std::uint64_t length = roundLength(min_insts);
    const std::pair<int, std::uint64_t> key{static_cast<int>(workload),
                                            seed};

    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Counted up front so hits_ + misses_ + bypasses_ == lookups_
        // partitions every completed call; the exception path below
        // backs the count out because it classifies as none of them.
        ++lookups_;
        if (budgetBytes_ == 0) {
            ++bypasses_;
            return nullptr;
        }
        auto it = entries_.find(key);
        if (it == entries_.end())
            it = entries_.emplace(key, std::make_shared<Entry>()).first;
        entry = it->second;
        entry->lastUse = ++useClock_;
        if (entry->buf != nullptr && entry->buf->size() >= min_insts) {
            ++hits_;
            return entry->buf;
        }
    }

    // Serialize generation per key so concurrent requesters build the
    // trace once; entry mutexes are always taken before the global one.
    std::lock_guard<std::mutex> gen(entry->genMutex);

    const std::uint64_t bytes = TraceBuffer::arenaBytesFor(length);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (entry->buf != nullptr && entry->buf->size() >= min_insts) {
            ++hits_;  // another thread generated it while we waited
            return entry->buf;
        }
        // A too-short buffer is replaced, which frees its charge — but
        // only commit to dropping it once the replacement is known to
        // fit, so a failed fit keeps the shorter trace servable.
        const std::uint64_t old_charge = entry->charged;
        chargedBytes_ -= old_charge;
        if (bytes > budgetBytes_ || !makeRoom(bytes, entry.get())) {
            chargedBytes_ += old_charge;
            ++bypasses_;
            return nullptr;
        }
        if (entry->buf != nullptr) {
            // External holders keep their shared view alive.
            entry->charged = 0;
            entry->buf.reset();
        }
        chargedBytes_ += bytes;  // reserve before the unlocked generation
    }

    std::shared_ptr<const TraceBuffer> buf;
    try {
        const Program &program = workloadProgram(workload);
        const WorkloadParams wparams = workloadParams(workload);
        buf = std::make_shared<TraceBuffer>(
            program, EngineParams{seed, wparams.zipfSkew,
                                  wparams.branchNoise},
            length);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        chargedBytes_ -= bytes;
        --lookups_;
        throw;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    entry->buf = buf;
    entry->charged = bytes;
    ++misses_;
    return buf;
}

TraceCache &
traceCache()
{
    static TraceCache cache(budgetFromEnv());
    return cache;
}

} // namespace cfl
