#include "trace/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/trace_buffer.hh"
#include "workloads/generator.hh"

namespace cfl
{

ExecEngine::ExecEngine(const Program &program, const EngineParams &params)
    : program_(program),
      behavior_(params.branchNoise),
      rng_(params.seed),
      zipfSkew_(params.zipfSkew),
      params_(params),
      pc_(program.entry)
{
    cfl_assert(program_.image.contains(pc_), "program entry outside image");
    cfl_assert(!program_.handlers.empty(), "program has no request handlers");
    stack_.reserve(64);
}

ExecEngine::ExecEngine(const Program &program, const WorkloadParams &wparams,
                       std::uint64_t seed)
    : ExecEngine(program,
                 EngineParams{seed, wparams.zipfSkew, wparams.branchNoise})
{
}

void
ExecEngine::attachTrace(std::shared_ptr<const TraceBuffer> trace)
{
    cfl_assert(trace != nullptr, "attachTrace(nullptr)");
    cfl_assert(instCount_ == 0 && !hasPeek_,
               "attachTrace after instructions were consumed");
    trace_ = std::move(trace);
    traceCursor_ = 0;
}

EngineSnapshot
ExecEngine::snapshot() const
{
    cfl_assert(trace_ == nullptr, "snapshot of a replaying engine");
    EngineSnapshot s;
    s.params = params_;
    s.rng = rng_;
    s.pc = pc_;
    s.stack = stack_;
    s.loopCounters = loopCounters_;
    s.requestType = requestType_;
    s.requestCount = requestCount_;
    s.instCount = instCount_;
    return s;
}

void
ExecEngine::restore(const EngineSnapshot &snap)
{
    rng_ = snap.rng;
    pc_ = snap.pc;
    stack_ = snap.stack;
    loopCounters_ = snap.loopCounters;
    requestType_ = snap.requestType;
    requestCount_ = snap.requestCount;
    cfl_assert(instCount_ == snap.instCount,
               "trace tail snapshot out of sync with replay cursor");
    trace_.reset();
    traceCursor_ = 0;
}

void
ExecEngine::skipReplay(std::uint64_t n)
{
    cfl_assert(trace_ != nullptr && !hasPeek_,
               "skipReplay outside plain replay");
    cfl_assert(traceCursor_ + n <= trace_->size(),
               "skipReplay past the buffered prefix");
    traceCursor_ += n;
    instCount_ += n;
}

void
ExecEngine::fastForward(std::uint64_t n)
{
    if (n == 0)
        return;
    if (hasPeek_) {
        // The buffered instruction was already produced; dropping it
        // consumes one of the n.
        hasPeek_ = false;
        --n;
    }
    while (n > 0) {
        if (trace_ != nullptr) {
            const std::uint64_t left = trace_->size() - traceCursor_;
            const std::uint64_t skip = std::min(n, left);
            traceCursor_ += skip;
            instCount_ += skip;
            n -= skip;
            if (n == 0)
                return;
            // Prefix exhausted mid-skip: continue generating (and
            // discarding) from the buffer's tail state.
            restore(trace_->tailSnapshot());
        }
        generate();
        --n;
    }
}

void
ExecEngine::restoreSnapshot(const EngineSnapshot &snap)
{
    trace_.reset();
    traceCursor_ = 0;
    hasPeek_ = false;
    rng_ = snap.rng;
    pc_ = snap.pc;
    stack_ = snap.stack;
    loopCounters_ = snap.loopCounters;
    requestType_ = snap.requestType;
    requestCount_ = snap.requestCount;
    instCount_ = snap.instCount;
}

const DynInst &
ExecEngine::peek()
{
    if (!hasPeek_) {
        step();
        hasPeek_ = true;
    }
    return cur_;
}

const DynInst &
ExecEngine::next()
{
    if (!hasPeek_)
        step();
    hasPeek_ = false;
    return cur_;
}

void
ExecEngine::step()
{
    if (trace_ != nullptr) {
        if (traceCursor_ < trace_->size()) {
            trace_->read(traceCursor_++, cur_);
            ++instCount_;
            return;
        }
        // Buffered prefix exhausted: continue generating from the
        // buffer's tail state; the combined stream is bit-identical to
        // one generated from scratch.
        restore(trace_->tailSnapshot());
    }
    generate();
}

void
ExecEngine::generate()
{
    const InstWord word = program_.image.at(pc_);
    const BranchKind kind = decodeKind(word);

    cur_ = DynInst{};
    cur_.pc = pc_;
    cur_.kind = kind;
    cur_.requestId = static_cast<std::uint32_t>(requestCount_);

    switch (kind) {
      case BranchKind::None:
        cur_.taken = false;
        break;

      case BranchKind::Cond: {
        const BranchInfo *info = program_.branchAt(pc_);
        cfl_assert(info != nullptr, "conditional without metadata at %llx",
                   static_cast<unsigned long long>(pc_));
        if (info->isLoopBack) {
            // The backedge is taken until the per-invocation trip count is
            // reached, then falls through and resets.
            const std::uint32_t trip =
                behavior_.loopTrip(pc_, *info, requestType_);
            std::uint32_t &count = loopCounters_[pc_];
            ++count;
            if (count < trip) {
                cur_.taken = true;
            } else {
                cur_.taken = false;
                count = 0;
            }
        } else {
            cur_.taken =
                behavior_.conditionalOutcome(pc_, *info, requestType_, rng_);
        }
        cur_.target = info->target;
        break;
      }

      case BranchKind::Uncond: {
        const BranchInfo *info = program_.branchAt(pc_);
        cur_.taken = true;
        cur_.target = info->target;
        break;
      }

      case BranchKind::Call: {
        const BranchInfo *info = program_.branchAt(pc_);
        cur_.taken = true;
        cur_.target = info->target;
        stack_.push_back(pc_ + kInstBytes);
        break;
      }

      case BranchKind::IndCall:
      case BranchKind::IndJump: {
        const BranchInfo *info = program_.branchAt(pc_);
        cfl_assert(info != nullptr, "indirect without metadata");
        const auto &targets = program_.indirectSets[info->indirectSet];
        if (pc_ == program_.dispatchCallPc) {
            // Request boundary: draw the next request type (Zipf over
            // types), then dispatch to that type's handler.
            ++requestCount_;
            requestType_ = static_cast<std::uint32_t>(
                rng_.nextZipf(program_.numRequestTypes, zipfSkew_));
            const std::size_t idx =
                hashMix(requestType_ * 0x9e3779b9ull) % targets.size();
            cur_.target = targets[idx];
        } else {
            const std::size_t idx = behavior_.indirectChoice(
                pc_, *info, requestType_, targets.size(), rng_);
            cur_.target = targets[idx];
        }
        cur_.taken = true;
        if (kind == BranchKind::IndCall)
            stack_.push_back(pc_ + kInstBytes);
        break;
      }

      case BranchKind::Return: {
        cfl_assert(!stack_.empty(), "return with empty call stack at %llx",
                   static_cast<unsigned long long>(pc_));
        cur_.taken = true;
        cur_.target = stack_.back();
        stack_.pop_back();
        break;
      }
    }

    pc_ = cur_.nextPc();
    ++instCount_;
}

} // namespace cfl
