/**
 * @file
 * Immutable, arena-backed SoA storage for a pre-generated oracle trace.
 *
 * A TraceBuffer captures the first N dynamic instructions an ExecEngine
 * with a given (program, params) pair would produce, laid out as five
 * parallel flat arrays (structure-of-arrays) carved out of one
 * contiguous arena allocation: pc, target, requestId, kind, taken.
 * Replay is a handful of indexed loads per instruction — no RNG, no
 * behavior model, no image decode — and the buffer is deeply const, so
 * any number of engines on any threads can replay one buffer
 * concurrently (the sharing the TraceCache exploits).
 *
 * The buffer also carries the generator state snapshot taken *after*
 * instruction N-1, so an engine that consumes past the buffered prefix
 * seamlessly resumes live generation with a bit-identical stream.
 */

#ifndef CFL_TRACE_TRACE_BUFFER_HH
#define CFL_TRACE_TRACE_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/engine.hh"
#include "workloads/program.hh"

namespace cfl
{

/** One immutable pre-generated instruction trace. */
class TraceBuffer
{
  public:
    /**
     * Generate the first @p num_insts instructions of
     * ExecEngine(program, params) into a fresh arena.
     */
    TraceBuffer(const Program &program, const EngineParams &params,
                std::uint64_t num_insts);

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /** Instructions stored. */
    std::uint64_t size() const { return numInsts_; }

    /** Load instruction @p i into @p out. */
    void
    read(std::uint64_t i, DynInst &out) const
    {
        out.pc = pc_[i];
        out.target = target_[i];
        out.requestId = requestId_[i];
        out.kind = static_cast<BranchKind>(kind_[i]);
        out.taken = taken_[i] != 0;
    }

    /** PC of instruction @p i (region starts need only the pc column). */
    Addr pcAt(std::uint64_t i) const { return pc_[i]; }

    /** Taken flag of instruction @p i (touch-only walks need just this
     *  one column per branch). */
    bool takenAt(std::uint64_t i) const { return taken_[i] != 0; }

    /**
     * Branch-skip predecode index: the instruction indices of every
     * branch in the trace, ascending. Built once with the trace and
     * shared by every replayer, it lets a region walk jump from branch
     * to branch instead of materializing each non-branch instruction.
     */
    const std::uint32_t *branchPositions() const
    {
        return branchPos_.data();
    }

    /** Number of entries in branchPositions(). */
    std::uint64_t numBranches() const { return branchPos_.size(); }

    /** Generator state after the last stored instruction. */
    const EngineSnapshot &tailSnapshot() const { return tail_; }

    /** The parameters the trace was generated with. */
    const EngineParams &params() const { return tail_.params; }

    /** Arena footprint in bytes (for cache budgeting). */
    std::uint64_t arenaBytes() const { return arenaBytes_; }

    /** Arena bytes a buffer of @p num_insts instructions will occupy. */
    static std::uint64_t
    arenaBytesFor(std::uint64_t num_insts)
    {
        return num_insts * (2 * sizeof(Addr) + sizeof(std::uint32_t) +
                            2 * sizeof(std::uint8_t));
    }

  private:
    std::uint64_t numInsts_;
    std::uint64_t arenaBytes_;
    std::unique_ptr<std::byte[]> arena_;

    // Column views into the arena.
    const Addr *pc_ = nullptr;
    const Addr *target_ = nullptr;
    const std::uint32_t *requestId_ = nullptr;
    const std::uint8_t *kind_ = nullptr;
    const std::uint8_t *taken_ = nullptr;

    /** Instruction indices of every branch, ascending (predecode). */
    std::vector<std::uint32_t> branchPos_;

    EngineSnapshot tail_;
};

} // namespace cfl

#endif // CFL_TRACE_TRACE_BUFFER_HH
