/**
 * @file
 * Process-wide, thread-safe cache of shared immutable workload traces.
 *
 * Every sweep point used to re-synthesize its oracle stream from scratch
 * (RNG + behavior model per instruction). The cache generates the trace
 * of each (workload, seed) pair once into a TraceBuffer and hands out
 * shared const views, so concurrent sweep points — and repeated sweeps
 * in one process, the common case for figure benches, calibration runs,
 * and the perf harness — replay instead of regenerating.
 *
 * Memory/speed trade-off: a buffer costs 22 bytes per instruction, so
 * full-length traces are large. The cache enforces a byte budget
 * (CONFLUENCE_TRACE_CACHE_MB, default 512; 0 disables caching): least-
 * recently-used idle buffers are dropped to make room, and when a new
 * trace cannot fit even after eviction, acquire() returns nullptr and
 * the caller simply keeps generating live — behaviour is bit-identical
 * either way, only the speed differs.
 */

#ifndef CFL_TRACE_TRACE_CACHE_HH
#define CFL_TRACE_TRACE_CACHE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "trace/trace_buffer.hh"
#include "workloads/suite.hh"

namespace cfl
{

/** Keyed store of shared TraceBuffers with an LRU byte budget. */
class TraceCache
{
  public:
    /** @param budget_bytes maximum cached arena bytes; 0 disables. */
    explicit TraceCache(std::uint64_t budget_bytes);

    /**
     * A shared trace of at least @p min_insts instructions of
     * (workload, seed), generating and caching it on first use.
     * Returns nullptr when the budget rules caching out — callers fall
     * back to live generation.
     */
    std::shared_ptr<const TraceBuffer>
    acquire(WorkloadId workload, std::uint64_t seed,
            std::uint64_t min_insts);

    /** Replace the byte budget (0 disables and drops idle entries). */
    void setBudgetBytes(std::uint64_t bytes);

    /** Drop every idle (externally unreferenced) buffer. */
    void clear();

    std::uint64_t budgetBytes() const;
    std::uint64_t cachedBytes() const;

    /**
     * Completed acquire() calls. Every lookup is classified as exactly
     * one of hit, miss, or bypass, so
     * hits() + misses() + bypasses() == lookups() always holds (an
     * acquire that unwinds with an exception is not counted).
     */
    std::uint64_t lookups() const;
    /** acquire() calls served from an existing buffer. */
    std::uint64_t hits() const;
    /** acquire() calls that generated a new buffer. */
    std::uint64_t misses() const;
    /** acquire() calls the budget turned away. */
    std::uint64_t bypasses() const;

  private:
    struct Entry;

    /** Drop idle LRU entries (other than @p exclude) until @p needed
     *  fits; true on success. */
    bool makeRoom(std::uint64_t needed, const Entry *exclude = nullptr);

    mutable std::mutex mutex_;
    std::map<std::pair<int, std::uint64_t>, std::shared_ptr<Entry>>
        entries_;
    std::uint64_t budgetBytes_;
    std::uint64_t chargedBytes_ = 0;
    std::uint64_t useClock_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t bypasses_ = 0;
};

/**
 * The process-wide cache every frontend shares. The initial budget comes
 * from CONFLUENCE_TRACE_CACHE_MB (default 512, 0 disables).
 */
TraceCache &traceCache();

} // namespace cfl

#endif // CFL_TRACE_TRACE_CACHE_HH
