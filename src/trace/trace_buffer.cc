#include "trace/trace_buffer.hh"

#include "common/logging.hh"

namespace cfl
{

TraceBuffer::TraceBuffer(const Program &program, const EngineParams &params,
                         std::uint64_t num_insts)
    : numInsts_(num_insts), arenaBytes_(arenaBytesFor(num_insts))
{
    cfl_assert(num_insts > 0, "empty trace buffer");
    cfl_assert(num_insts <= ~std::uint32_t{0},
               "trace too long for the 32-bit branch index");
    arena_ = std::make_unique<std::byte[]>(arenaBytes_);

    // Carve the SoA columns out of the arena widest-first so every
    // column lands on its natural alignment.
    std::byte *base = arena_.get();
    auto *pc = reinterpret_cast<Addr *>(base);
    auto *target = reinterpret_cast<Addr *>(base + 8 * num_insts);
    auto *request_id =
        reinterpret_cast<std::uint32_t *>(base + 16 * num_insts);
    auto *kind = reinterpret_cast<std::uint8_t *>(base + 20 * num_insts);
    auto *taken = reinterpret_cast<std::uint8_t *>(base + 21 * num_insts);

    ExecEngine engine(program, params);
    for (std::uint64_t i = 0; i < num_insts; ++i) {
        const DynInst &inst = engine.next();
        pc[i] = inst.pc;
        target[i] = inst.target;
        request_id[i] = inst.requestId;
        kind[i] = static_cast<std::uint8_t>(inst.kind);
        taken[i] = inst.taken ? 1 : 0;
        if (inst.kind != BranchKind::None)
            branchPos_.push_back(static_cast<std::uint32_t>(i));
    }
    tail_ = engine.snapshot();

    pc_ = pc;
    target_ = target;
    requestId_ = request_id;
    kind_ = kind;
    taken_ = taken;
}

} // namespace cfl
