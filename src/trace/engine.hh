/**
 * @file
 * Execution engine: turns a static Program into the dynamic instruction
 * stream (the oracle trace) one instruction at a time.
 *
 * The engine is the stand-in for Flexus full-system traces: it maintains
 * a call stack and per-loop counters, draws a new typed request at every
 * iteration of the dispatch loop (Zipf-distributed popularity), and asks
 * the BranchBehavior model for every outcome. Two engines constructed
 * with the same (program, seed) produce identical streams.
 *
 * Engines run in one of two modes:
 *  - *generation* (default): execute the program instruction by
 *    instruction, exactly as before;
 *  - *replay*: attachTrace() hands the engine an immutable, pre-generated
 *    TraceBuffer for the same (program, params) pair; next()/peek() then
 *    stream instructions out of the buffer's flat arrays with no RNG,
 *    behavior-model, or image work at all. If a consumer runs past the
 *    buffered prefix, the engine restores the generator state snapshot
 *    the buffer carries and continues generating — so a replayed stream
 *    is bit-identical to a generated one at every length.
 */

#ifndef CFL_TRACE_ENGINE_HH
#define CFL_TRACE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"
#include "isa/inst.hh"
#include "trace/behavior.hh"
#include "workloads/generator.hh"
#include "workloads/program.hh"

namespace cfl
{

class TraceBuffer;

/** Execution-engine tunables (defaults come from the workload). */
struct EngineParams
{
    std::uint64_t seed = 0x5eed;
    double zipfSkew = 0.6;
    double branchNoise = 0.03;
};

/**
 * Complete generator state of an ExecEngine, detached from the engine.
 * A TraceBuffer stores the snapshot taken after its last instruction so
 * replay can continue generating past the buffered prefix.
 */
struct EngineSnapshot
{
    EngineParams params;
    Rng rng{0};
    Addr pc = 0;
    std::vector<Addr> stack;
    FlatMap<std::uint32_t> loopCounters;
    std::uint32_t requestType = 0;
    std::uint64_t requestCount = 0;
    std::uint64_t instCount = 0;
};

/** Generates (or replays) the dynamic instruction stream of one core. */
class ExecEngine
{
  public:
    ExecEngine(const Program &program, const EngineParams &params);

    /** Convenience: defaults drawn from the generating WorkloadParams. */
    ExecEngine(const Program &program, const WorkloadParams &wparams,
               std::uint64_t seed);

    /** Execute and return the next dynamic instruction. */
    const DynInst &next();

    /** The instruction that next() will return, without advancing. */
    const DynInst &peek();

    /**
     * Switch to replay mode: stream instructions from @p trace instead
     * of generating them. Must be called before the first instruction is
     * consumed, and the buffer must have been generated from the same
     * (program, params) pair for the stream to be faithful.
     */
    void attachTrace(std::shared_ptr<const TraceBuffer> trace);

    /** True while instructions come from an attached trace. */
    bool replaying() const { return trace_ != nullptr; }

    /** The attached trace, or nullptr when generating live. */
    const TraceBuffer *replayBuffer() const { return trace_.get(); }

    /** Index of the next instruction next() would replay. */
    std::uint64_t replayCursor() const { return traceCursor_; }

    /** True when peek() buffered an instruction next() hasn't taken. */
    bool peekPending() const { return hasPeek_; }

    /**
     * Advance the replay cursor past @p n instructions without
     * materializing them. Callers must have consumed them some other
     * way (e.g. straight from the buffer's columns) and must stay
     * within the buffered prefix with no peek outstanding — the skip
     * is then indistinguishable from n calls to next().
     */
    void skipReplay(std::uint64_t n);

    /**
     * Advance the stream past @p n instructions without handing them to
     * a consumer. Within a replayed prefix the skip is pure cursor
     * arithmetic; past the buffer tail (or in generation mode) the
     * engine generates and discards. A pending peek()ed instruction
     * counts as the first of the @p n. Bit-identical to n calls to
     * next(): the stream observed afterwards is the same either way.
     */
    void fastForward(std::uint64_t n);

    /** Capture the current generator state (generation mode only). */
    EngineSnapshot snapshot() const;

    /**
     * Rewind (or advance) to a previously captured snapshot of this
     * engine. Leaves replay mode if active and discards any pending
     * peek; the subsequent stream is bit-identical to the one observed
     * after the original snapshot() call.
     */
    void restoreSnapshot(const EngineSnapshot &snap);

    /** Number of requests dispatched so far. */
    std::uint64_t requestCount() const { return requestCount_; }

    /** Request type currently being served. */
    std::uint32_t currentRequestType() const { return requestType_; }

    /** Total instructions executed. */
    std::uint64_t instCount() const { return instCount_; }

    /** Current call-stack depth. */
    std::size_t stackDepth() const { return stack_.size(); }

    const Program &program() const { return program_; }

  private:
    void step();
    void generate();

    /** Leave replay mode by adopting the trace's tail snapshot. */
    void restore(const EngineSnapshot &snap);

    const Program &program_;
    BranchBehavior behavior_;
    Rng rng_;
    double zipfSkew_;
    EngineParams params_;

    Addr pc_;
    std::vector<Addr> stack_;
    FlatMap<std::uint32_t> loopCounters_;

    std::uint32_t requestType_ = 0;
    std::uint64_t requestCount_ = 0;
    std::uint64_t instCount_ = 0;

    std::shared_ptr<const TraceBuffer> trace_;
    std::uint64_t traceCursor_ = 0;

    DynInst cur_;
    bool hasPeek_ = false;
};

} // namespace cfl

#endif // CFL_TRACE_ENGINE_HH
