/**
 * @file
 * Execution engine: turns a static Program into the dynamic instruction
 * stream (the oracle trace) one instruction at a time.
 *
 * The engine is the stand-in for Flexus full-system traces: it maintains
 * a call stack and per-loop counters, draws a new typed request at every
 * iteration of the dispatch loop (Zipf-distributed popularity), and asks
 * the BranchBehavior model for every outcome. Two engines constructed
 * with the same (program, seed) produce identical streams.
 */

#ifndef CFL_TRACE_ENGINE_HH
#define CFL_TRACE_ENGINE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "isa/inst.hh"
#include "trace/behavior.hh"
#include "workloads/generator.hh"
#include "workloads/program.hh"

namespace cfl
{

/** Execution-engine tunables (defaults come from the workload). */
struct EngineParams
{
    std::uint64_t seed = 0x5eed;
    double zipfSkew = 0.6;
    double branchNoise = 0.03;
};

/** Generates the dynamic instruction stream of one core. */
class ExecEngine
{
  public:
    ExecEngine(const Program &program, const EngineParams &params);

    /** Convenience: defaults drawn from the generating WorkloadParams. */
    ExecEngine(const Program &program, const WorkloadParams &wparams,
               std::uint64_t seed);

    /** Execute and return the next dynamic instruction. */
    const DynInst &next();

    /** The instruction that next() will return, without advancing. */
    const DynInst &peek();

    /** Number of requests dispatched so far. */
    std::uint64_t requestCount() const { return requestCount_; }

    /** Request type currently being served. */
    std::uint32_t currentRequestType() const { return requestType_; }

    /** Total instructions executed. */
    std::uint64_t instCount() const { return instCount_; }

    /** Current call-stack depth. */
    std::size_t stackDepth() const { return stack_.size(); }

    const Program &program() const { return program_; }

  private:
    void step();

    const Program &program_;
    BranchBehavior behavior_;
    Rng rng_;
    double zipfSkew_;

    Addr pc_;
    std::vector<Addr> stack_;
    std::unordered_map<Addr, std::uint32_t> loopCounters_;

    std::uint32_t requestType_ = 0;
    std::uint64_t requestCount_ = 0;
    std::uint64_t instCount_ = 0;

    DynInst cur_;
    bool hasPeek_ = false;
};

} // namespace cfl

#endif // CFL_TRACE_ENGINE_HH
