/**
 * @file
 * Per-branch outcome model.
 *
 * The model makes control flow *recurring at the request level* (the
 * property SHIFT's temporal streams rely on, Section 2.2): a branch's
 * outcome is a deterministic function of (branch site, request type),
 * perturbed by a small per-execution noise term. Loop backedges iterate a
 * per-(site, request-type) trip count. Indirect branches choose a target
 * from their site's target set the same way.
 */

#ifndef CFL_TRACE_BEHAVIOR_HH
#define CFL_TRACE_BEHAVIOR_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "workloads/program.hh"

namespace cfl
{

/** Deterministic per-(site, request-type) branch behaviour. */
class BranchBehavior
{
  public:
    /** @param noise per-execution probability of diverging from habit */
    explicit BranchBehavior(double noise);

    /** Habitual direction of a non-loop conditional under @p req_type. */
    bool habitualDirection(Addr branch_pc, const BranchInfo &info,
                           std::uint32_t req_type) const;

    /** Actual direction including the noise draw from @p rng. */
    bool conditionalOutcome(Addr branch_pc, const BranchInfo &info,
                            std::uint32_t req_type, Rng &rng) const;

    /** Loop trip count for this (site, request type). Always >= 1. */
    std::uint32_t loopTrip(Addr branch_pc, const BranchInfo &info,
                           std::uint32_t req_type) const;

    /** Index into the branch's indirect target set (noise included). */
    std::size_t indirectChoice(Addr branch_pc, const BranchInfo &info,
                               std::uint32_t req_type, std::size_t set_size,
                               Rng &rng) const;

    double noise() const { return noise_; }

  private:
    double noise_;
};

} // namespace cfl

#endif // CFL_TRACE_BEHAVIOR_HH
