#include "trace/behavior.hh"

namespace cfl
{

namespace
{

/** Uniform [0,1) value derived from a (site, request-type) pair. */
double
siteUnit(Addr branch_pc, std::uint32_t req_type, std::uint64_t salt)
{
    const std::uint64_t h =
        hashCombine(hashCombine(branch_pc, req_type), salt);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

BranchBehavior::BranchBehavior(double noise)
    : noise_(noise)
{
}

bool
BranchBehavior::habitualDirection(Addr branch_pc, const BranchInfo &info,
                                  std::uint32_t req_type) const
{
    // The per-site bias shapes the fraction of request types that take the
    // branch; within one request type the habit is fixed.
    return siteUnit(branch_pc, req_type, 0x7aceb00c) < info.bias;
}

bool
BranchBehavior::conditionalOutcome(Addr branch_pc, const BranchInfo &info,
                                   std::uint32_t req_type, Rng &rng) const
{
    const bool habit = habitualDirection(branch_pc, info, req_type);
    if (noise_ > 0.0 && rng.nextBool(noise_))
        return !habit;
    return habit;
}

std::uint32_t
BranchBehavior::loopTrip(Addr branch_pc, const BranchInfo &info,
                         std::uint32_t req_type) const
{
    const std::uint64_t h =
        hashCombine(hashCombine(branch_pc, req_type), 0x100b5);
    const std::uint32_t range = info.tripRange + 1u;
    std::uint32_t trip = info.tripBase + static_cast<std::uint32_t>(h % range);
    return trip == 0 ? 1 : trip;
}

std::size_t
BranchBehavior::indirectChoice(Addr branch_pc, const BranchInfo &info,
                               std::uint32_t req_type, std::size_t set_size,
                               Rng &rng) const
{
    (void)info;
    if (set_size <= 1)
        return 0;
    if (noise_ > 0.0 && rng.nextBool(noise_))
        return static_cast<std::size_t>(rng.nextBelow(set_size));
    const std::uint64_t h =
        hashCombine(hashCombine(branch_pc, req_type), 0x1d1d);
    return static_cast<std::size_t>(h % set_size);
}

} // namespace cfl
