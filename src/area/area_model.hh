/**
 * @file
 * Analytic storage/area model standing in for CACTI 6.5 @ 40nm
 * (Section 4.2).
 *
 * Figures 2 and 6 plot *relative* per-core area: (core + front-end
 * overhead) / (core + baseline BTB), with the ARM Cortex-A72-like core at
 * 7.2mm². The KB->mm² curve is calibrated to the paper's own published
 * CACTI points:
 *
 *     9.9KB  (1K-entry BTB + victim buffer) -> 0.08 mm²
 *     140KB  (16K-entry second-level BTB)   -> 0.6  mm²
 *     AirBTB 10.2KB                         -> 0.08 mm²
 *     SHIFT index in LLC tags               -> 0.96 mm² / 16 cores
 *
 * Virtualized structures (SHIFT history, PhantomBTB groups) consume LLC
 * capacity, not dedicated area, and are reported as such.
 */

#ifndef CFL_AREA_AREA_MODEL_HH
#define CFL_AREA_AREA_MODEL_HH

#include <string>
#include <vector>

namespace cfl
{

/** One storage structure's cost. */
struct StructureArea
{
    std::string name;
    double kiloBytes = 0.0;   ///< dedicated SRAM storage
    double mm2 = 0.0;         ///< dedicated area
    double llcKiloBytes = 0.0; ///< LLC capacity consumed (virtualized)
};

/** Totals over a design point's storage inventory. */
struct StorageSummary
{
    double dedicatedKiloBytes = 0.0; ///< sum of dedicated SRAM KB
    double dedicatedMm2 = 0.0;       ///< sum of dedicated area
    double llcKiloBytes = 0.0;       ///< sum of virtualized LLC KB
};

/** Sum a structure inventory (e.g. frontendStructures()) into the
 *  storage-cost totals the Pareto search ranks candidates by. */
StorageSummary
summarizeStructures(const std::vector<StructureArea> &structures);

/** Area model with the paper's calibration. */
class AreaModel
{
  public:
    /** Cortex-A72-like core area at 40nm (Section 2.3). */
    static constexpr double kCoreAreaMm2 = 7.2;

    /** SHIFT's per-CMP index-table area (LLC tag extension), mm². */
    static constexpr double kShiftIndexMm2 = 0.96;

    /** Convert a dedicated SRAM capacity to mm² (calibrated). */
    static double mm2ForKb(double kilo_bytes);

    /** Bits of one conventional basic-block BTB entry (Section 4.2.2):
     *  tag + 30-bit target + 2-bit type + 4-bit fall-through + valid. */
    static double conventionalBtbEntryBits(std::size_t entries,
                                           unsigned ways);

    /** Dedicated storage of a conventional BTB (+ victim buffer), KB. */
    static double conventionalBtbKb(std::size_t entries, unsigned ways,
                                    unsigned victim_entries);

    /** Dedicated storage of AirBTB, KB (Section 4.2.2: 10.2KB). */
    static double airBtbKb(std::size_t bundles, unsigned ways,
                           unsigned branch_entries,
                           unsigned overflow_entries);

    /** Per-core dedicated area of SHIFT (index tag extension). */
    static double shiftPerCoreMm2(unsigned num_cores);
};

} // namespace cfl

#endif // CFL_AREA_AREA_MODEL_HH
