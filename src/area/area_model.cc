#include "area/area_model.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace cfl
{

StorageSummary
summarizeStructures(const std::vector<StructureArea> &structures)
{
    StorageSummary sum;
    for (const StructureArea &s : structures) {
        sum.dedicatedKiloBytes += s.kiloBytes;
        sum.dedicatedMm2 += s.mm2;
        sum.llcKiloBytes += s.llcKiloBytes;
    }
    return sum;
}

double
AreaModel::mm2ForKb(double kilo_bytes)
{
    if (kilo_bytes <= 0.0)
        return 0.0;
    // Density (mm²/KB) falls with capacity: fit through the paper's
    // (9.9KB, 0.08mm²) and (140KB, 0.6mm²) CACTI points, linear in
    // log2(KB), clamped to plausible SRAM densities at 40nm.
    const double lg = std::log2(kilo_bytes);
    const double density = std::clamp(0.011365 - 0.000993 * lg,
                                      0.0030, 0.0140);
    return kilo_bytes * density;
}

double
AreaModel::conventionalBtbEntryBits(std::size_t entries, unsigned ways)
{
    cfl_assert(entries % ways == 0, "entries must divide by ways");
    const std::size_t sets = entries / ways;
    // 48-bit VA, 4B instructions, set index bits removed from the tag.
    const double tag_bits =
        kVirtualAddrBits - 2.0 - static_cast<double>(floorLog2(sets));
    const double target_bits = 30.0;  // longest displacement field
    const double type_bits = 2.0;
    const double fallthrough_bits = 4.0;  // covers 99% of basic blocks
    const double valid_bit = 1.0;
    return tag_bits + target_bits + type_bits + fallthrough_bits +
           valid_bit;
}

double
AreaModel::conventionalBtbKb(std::size_t entries, unsigned ways,
                             unsigned victim_entries)
{
    const double main_bits =
        static_cast<double>(entries) *
        conventionalBtbEntryBits(entries, ways);
    // Victim buffer entries are fully associative: full tags.
    const double victim_entry_bits =
        (kVirtualAddrBits - 2.0) + 30.0 + 2.0 + 4.0 + 1.0;
    const double victim_bits = victim_entries * victim_entry_bits;
    return (main_bits + victim_bits) / 8.0 / 1024.0;
}

double
AreaModel::airBtbKb(std::size_t bundles, unsigned ways,
                    unsigned branch_entries, unsigned overflow_entries)
{
    cfl_assert(bundles % ways == 0, "bundles must divide by ways");
    const std::size_t sets = bundles / ways;
    // Bundle tag: block address minus block-offset and set-index bits.
    const double tag_bits = kVirtualAddrBits - 6.0 -
                            static_cast<double>(floorLog2(sets));
    const double bitmap_bits = 16.0;
    const double entry_bits = 4.0 + 2.0 + 30.0;  // offset + type + target
    const double bundle_bits = tag_bits + bitmap_bits + 1.0 +
                               branch_entries * entry_bits;
    // Overflow entries carry full branch-PC tags.
    const double overflow_entry_bits =
        (kVirtualAddrBits - 2.0) + 2.0 + 30.0 + 1.0;
    const double total_bits = bundles * bundle_bits +
                              overflow_entries * overflow_entry_bits;
    return total_bits / 8.0 / 1024.0;
}

double
AreaModel::shiftPerCoreMm2(unsigned num_cores)
{
    cfl_assert(num_cores > 0, "need >= 1 core");
    return kShiftIndexMm2 / num_cores;
}

} // namespace cfl
