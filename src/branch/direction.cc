#include "branch/direction.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace cfl
{

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table_(entries)
{
    cfl_assert(isPowerOfTwo(entries), "bimodal entries must be 2^n");
}

bool
BimodalPredictor::predict(Addr pc)
{
    lookupsStat_->inc();
    return table_[index(pc)].taken();
}

void
BimodalPredictor::update(Addr pc, bool outcome)
{
    table_[index(pc)].update(outcome);
}

GsharePredictor::GsharePredictor(std::size_t entries, unsigned history_bits)
    : table_(entries), historyBits_(history_bits)
{
    cfl_assert(isPowerOfTwo(entries), "gshare entries must be 2^n");
    cfl_assert(history_bits <= 32, "history too long");
}

bool
GsharePredictor::predict(Addr pc)
{
    lookupsStat_->inc();
    return table_[index(pc)].taken();
}

void
GsharePredictor::update(Addr pc, bool outcome)
{
    table_[index(pc)].update(outcome);
    history_ = (history_ << 1) | (outcome ? 1 : 0);
}

HybridPredictor::HybridPredictor(std::size_t gshare_entries,
                                 std::size_t bimodal_entries,
                                 std::size_t meta_entries,
                                 unsigned history_bits)
    : gshare_(gshare_entries, history_bits),
      bimodal_(bimodal_entries),
      meta_(meta_entries, SatCounter2(2))  // slight initial gshare lean
{
    cfl_assert(isPowerOfTwo(meta_entries), "meta entries must be 2^n");
}

bool
HybridPredictor::predict(Addr pc)
{
    lookupsStat_->inc();
    lastGshare_ = gshare_.predict(pc);
    lastBimodal_ = bimodal_.predict(pc);
    const bool use_gshare = meta_[metaIndex(pc)].taken();
    return use_gshare ? lastGshare_ : lastBimodal_;
}

void
HybridPredictor::update(Addr pc, bool outcome)
{
    // Meta trains toward the component that was right when they disagree.
    if (lastGshare_ != lastBimodal_)
        meta_[metaIndex(pc)].update(lastGshare_ == outcome);
    gshare_.update(pc, outcome);
    bimodal_.update(pc, outcome);
}

} // namespace cfl
