/**
 * @file
 * Branch direction predictors (Table 1: hybrid of a 16K-entry gshare and
 * a bimodal table with a meta selector).
 *
 * The direction predictor is identical in every front-end configuration
 * the paper compares; it exists so that misprediction bubbles and the
 * interplay with BTB-provided fetch regions are modeled, not to study
 * direction prediction itself.
 */

#ifndef CFL_BRANCH_DIRECTION_HH
#define CFL_BRANCH_DIRECTION_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace cfl
{

/** Two-bit saturating counter. */
class SatCounter2
{
  public:
    explicit SatCounter2(std::uint8_t initial = 1) : value_(initial) {}

    bool taken() const { return value_ >= 2; }

    void update(bool outcome)
    {
        if (outcome && value_ < 3)
            ++value_;
        else if (!outcome && value_ > 0)
            --value_;
    }

    std::uint8_t raw() const { return value_; }

  private:
    std::uint8_t value_;
};

/** Interface of a direction predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /** Train with the actual outcome (call after predict). */
    virtual void update(Addr pc, bool outcome) = 0;

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  protected:
    StatSet stats_{"direction"};
    /** Per-prediction counter resolved once (map nodes are stable). */
    Stat *lookupsStat_ = &stats_.scalar("lookups");
};

/** PC-indexed table of 2-bit counters. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    explicit BimodalPredictor(std::size_t entries = 16 * 1024);

    bool predict(Addr pc) override;
    void update(Addr pc, bool outcome) override;

    /** predict()+update() fused for sampled warming: one index
     *  computation, no stat counters; state effects are identical.
     *  Returns the prediction. */
    bool
    warm(Addr pc, bool outcome)
    {
        SatCounter2 &c = table_[index(pc)];
        const bool pred = c.taken();
        c.update(outcome);
        return pred;
    }

  private:
    std::size_t
    index(Addr pc) const
    {
        return (pc / kInstBytes) & (table_.size() - 1);
    }
    std::vector<SatCounter2> table_;
};

/** Global-history-xor-PC indexed predictor. */
class GsharePredictor : public DirectionPredictor
{
  public:
    explicit GsharePredictor(std::size_t entries = 16 * 1024,
                             unsigned history_bits = 12);

    bool predict(Addr pc) override;
    void update(Addr pc, bool outcome) override;

    /** predict()+update() fused for sampled warming: the index is
     *  computed once with the pre-update history (exactly what the
     *  predict-then-update sequence uses), no stat counters; state
     *  effects are identical. Returns the prediction. */
    bool
    warm(Addr pc, bool outcome)
    {
        SatCounter2 &c = table_[index(pc)];
        const bool pred = c.taken();
        c.update(outcome);
        history_ = (history_ << 1) | (outcome ? 1 : 0);
        return pred;
    }

  private:
    std::size_t
    index(Addr pc) const
    {
        const std::uint64_t h = history_ & mask(historyBits_);
        return ((pc / kInstBytes) ^ h) & (table_.size() - 1);
    }
    std::vector<SatCounter2> table_;
    unsigned historyBits_;
    std::uint64_t history_ = 0;
};

/**
 * Hybrid predictor: gshare + bimodal with a meta (chooser) table that
 * learns which component to trust per branch (Table 1).
 */
class HybridPredictor : public DirectionPredictor
{
  public:
    HybridPredictor(std::size_t gshare_entries = 16 * 1024,
                    std::size_t bimodal_entries = 16 * 1024,
                    std::size_t meta_entries = 16 * 1024,
                    unsigned history_bits = 12);

    bool predict(Addr pc) override;
    void update(Addr pc, bool outcome) override;

    /** predict()+update() fused for sampled warming (touch tier, one
     *  call per conditional branch): no virtual dispatch, one index
     *  computation per table, no stat counters. State effects —
     *  component tables, gshare history, meta training, the remembered
     *  component predictions — are identical to predict(pc) followed
     *  by update(pc, outcome). */
    void
    warm(Addr pc, bool outcome)
    {
        lastGshare_ = gshare_.warm(pc, outcome);
        lastBimodal_ = bimodal_.warm(pc, outcome);
        if (lastGshare_ != lastBimodal_)
            meta_[metaIndex(pc)].update(lastGshare_ == outcome);
    }

  private:
    std::size_t
    metaIndex(Addr pc) const
    {
        return (pc / kInstBytes) & (meta_.size() - 1);
    }

    GsharePredictor gshare_;
    BimodalPredictor bimodal_;
    std::vector<SatCounter2> meta_;

    // Remembered between predict() and update() for meta training.
    bool lastGshare_ = false;
    bool lastBimodal_ = false;
};

} // namespace cfl

#endif // CFL_BRANCH_DIRECTION_HH
