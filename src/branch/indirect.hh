/**
 * @file
 * Indirect target cache (Table 1: 1K entries): last-target prediction for
 * indirect jumps/calls, indexed by branch PC hashed with a short path
 * history to separate per-request-type targets.
 */

#ifndef CFL_BRANCH_INDIRECT_HH
#define CFL_BRANCH_INDIRECT_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace cfl
{

/** Indirect target cache. */
class IndirectTargetCache
{
  public:
    /** @param entries table size (power of two)
     *  @param history_bits bits of target-history mixed into the index */
    explicit IndirectTargetCache(std::size_t entries = 1024,
                                 unsigned history_bits = 6);

    /** Predict the target of the indirect branch at @p pc; 0 if unknown. */
    Addr predict(Addr pc);

    /** Train with the actual target (also advances the path history). */
    void update(Addr pc, Addr target);

    StatSet &stats() { return stats_; }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
    };

    std::size_t index(Addr pc) const;

    std::vector<Entry> table_;
    unsigned historyBits_;
    std::uint64_t history_ = 0;
    StatSet stats_{"itc"};

    // Per-indirect-branch counters resolved once.
    Stat *lookupsStat_ = &stats_.scalar("lookups");
    Stat *tagHitsStat_ = &stats_.scalar("tagHits");
};

} // namespace cfl

#endif // CFL_BRANCH_INDIRECT_HH
