#include "branch/ras.hh"

#include "common/logging.hh"

namespace cfl
{

ReturnAddressStack::ReturnAddressStack(unsigned entries)
    : stack_(entries, 0)
{
    cfl_assert(entries > 0, "RAS needs >= 1 entry");
}

void
ReturnAddressStack::push(Addr return_addr)
{
    pushesStat_->inc();
    stack_[topIndex_] = return_addr;
    topIndex_ = (topIndex_ + 1) % stack_.size();
    if (depth_ < stack_.size()) {
        ++depth_;
    } else {
        overflowsStat_->inc();
    }
}

Addr
ReturnAddressStack::pop()
{
    popsStat_->inc();
    if (depth_ == 0) {
        underflowsStat_->inc();
        return 0;
    }
    topIndex_ = (topIndex_ + stack_.size() - 1) % stack_.size();
    --depth_;
    return stack_[topIndex_];
}

Addr
ReturnAddressStack::top() const
{
    if (depth_ == 0)
        return 0;
    return stack_[(topIndex_ + stack_.size() - 1) % stack_.size()];
}

} // namespace cfl
