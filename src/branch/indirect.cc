#include "branch/indirect.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace cfl
{

IndirectTargetCache::IndirectTargetCache(std::size_t entries,
                                         unsigned history_bits)
    : table_(entries), historyBits_(history_bits)
{
    cfl_assert(isPowerOfTwo(entries), "ITC entries must be 2^n");
}

std::size_t
IndirectTargetCache::index(Addr pc) const
{
    const std::uint64_t h = history_ & mask(historyBits_);
    return ((pc / kInstBytes) ^ h) & (table_.size() - 1);
}

Addr
IndirectTargetCache::predict(Addr pc)
{
    lookupsStat_->inc();
    const Entry &e = table_[index(pc)];
    if (e.valid && e.tag == pc) {
        tagHitsStat_->inc();
        return e.target;
    }
    return 0;
}

void
IndirectTargetCache::update(Addr pc, Addr target)
{
    Entry &e = table_[index(pc)];
    e.tag = pc;
    e.target = target;
    e.valid = true;
    // Path history: fold a few target bits in, as real ITCs do.
    history_ = ((history_ << 2) ^ (target >> 4)) & mask(historyBits_);
}

} // namespace cfl
