/**
 * @file
 * Return address stack (Table 1: 64 entries). Predicts return targets;
 * overflows wrap (oldest entry lost), underflows mispredict.
 */

#ifndef CFL_BRANCH_RAS_HH
#define CFL_BRANCH_RAS_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace cfl
{

/** Circular return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries = 64);

    /** Push a return address (on predicted calls). */
    void push(Addr return_addr);

    /** Pop and return the predicted return target; 0 when empty. */
    Addr pop();

    /** Peek at the top without popping; 0 when empty. */
    Addr top() const;

    bool empty() const { return depth_ == 0; }
    unsigned depth() const { return depth_; }

    StatSet &stats() { return stats_; }

  private:
    std::vector<Addr> stack_;
    unsigned topIndex_ = 0;  ///< next push position
    unsigned depth_ = 0;
    StatSet stats_{"ras"};

    // Per-call/return counters resolved once (map nodes are stable).
    Stat *pushesStat_ = &stats_.scalar("pushes");
    Stat *popsStat_ = &stats_.scalar("pops");
    Stat *overflowsStat_ = &stats_.scalar("overflows");
    Stat *underflowsStat_ = &stats_.scalar("underflows");
};

} // namespace cfl

#endif // CFL_BRANCH_RAS_HH
