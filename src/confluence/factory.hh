/**
 * @file
 * Front-end configuration factory: builds fully-wired single-core
 * front-end simulations for every design point the paper compares.
 *
 * Design points (Sections 2.3, 4.2, 5.1):
 *
 *   Baseline      1K-entry conventional BTB + 64-entry victim buffer,
 *                 no instruction prefetching (the normalization point)
 *   Fdp           Baseline BTB + fetch-directed prefetching
 *   PhantomFdp    PhantomBTB (shared virtualized L2) + FDP
 *   TwoLevelFdp   1K/16K two-level BTB + FDP
 *   PhantomShift  PhantomBTB + SHIFT
 *   TwoLevelShift 1K/16K two-level BTB + SHIFT
 *   IdealBtbShift 16K-entry single-cycle BTB + SHIFT (Figure 7 bound)
 *   Confluence    AirBTB + SHIFT with unified metadata (this paper)
 *   Ideal         perfect L1-I + perfect BTB
 */

#ifndef CFL_CONFLUENCE_FACTORY_HH
#define CFL_CONFLUENCE_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "branch/direction.hh"
#include "branch/indirect.hh"
#include "branch/ras.hh"
#include "btb/air_btb.hh"
#include "btb/btb.hh"
#include "btb/conventional_btb.hh"
#include "btb/phantom_btb.hh"
#include "btb/two_level_btb.hh"
#include "confluence/confluence.hh"
#include "core/bpu.hh"
#include "core/frontend.hh"
#include "isa/predecoder.hh"
#include "mem/hierarchy.hh"
#include "prefetch/shift.hh"
#include "trace/engine.hh"
#include "workloads/suite.hh"

namespace cfl
{

/** The design points of the paper's evaluation. */
enum class FrontendKind
{
    Baseline,
    Fdp,
    PhantomFdp,
    TwoLevelFdp,
    PhantomShift,
    TwoLevelShift,
    IdealBtbShift,
    Confluence,
    Ideal,
};

/** Display name as used in the paper's figures. */
std::string frontendKindName(FrontendKind kind);

/** Machine-friendly name ("two_level_shift") for files and CLIs. */
std::string frontendKindSlug(FrontendKind kind);

/** Inverse of frontendKindSlug; fatal() on an unknown slug. */
FrontendKind frontendKindFromSlug(const std::string &slug);

/** All design points, in the enum's (paper) order. */
const std::vector<FrontendKind> &allFrontendKinds();

/** True if the design point uses SHIFT for instruction prefetching. */
bool usesShift(FrontendKind kind);

/** True if the design point uses fetch-directed prefetching. */
bool usesFdp(FrontendKind kind);

/** True if the design point uses the PhantomBTB shared history. */
bool usesPhantom(FrontendKind kind);

/** Structure parameters of the modeled system (Table 1 defaults). */
struct SystemConfig
{
    unsigned numCores = 4;

    /** Core count used to amortize CMP-wide structures (SHIFT's index)
     *  in area accounting. The paper reports a 16-core CMP; timing runs
     *  may simulate fewer cores without changing the area story. */
    unsigned areaAmortizationCores = 16;

    FrontendParams frontend;
    BpuParams bpu;
    InstMemoryParams instMem;
    LlcParams llc;
    ShiftParams shift;
    PhantomBtbParams phantom;
    AirBtbParams air;
    ConventionalBtbParams baselineBtb{1024, 4, 64};
    ConventionalBtbParams idealBtb{16 * 1024, 4, 0};
    TwoLevelBtbParams twoLevel;
    unsigned predecodeLatency = 3;
};

/** Shared (per-CMP) state a core plugs into. */
struct SharedState
{
    Llc *llc = nullptr;
    ShiftHistory *shiftHistory = nullptr;
    std::shared_ptr<PhantomSharedHistory> phantomHistory;
};

/** A fully assembled single-core front-end simulation. */
class CoreSim
{
  public:
    /** @param recorder this core writes the shared SHIFT history */
    CoreSim(FrontendKind kind, const Program &program,
            const WorkloadParams &wparams, const SystemConfig &config,
            SharedState &shared, unsigned core_id, std::uint64_t seed,
            bool recorder);

    Frontend &frontend() { return *frontend_; }
    Bpu &bpu() { return *bpu_; }
    Btb &btb() { return *btb_; }
    InstMemory &mem() { return *mem_; }
    ExecEngine &engine() { return *engine_; }
    InstPrefetcher *prefetcher() { return prefetcher_.get(); }
    FrontendKind kind() const { return kind_; }

    /** Reset all measurement stats (post-warmup). */
    void beginMeasurement();

  private:
    /** AirBTB fill-request hook: unified-metadata miss -> L1-I fill. */
    void requestAirFill(Addr block, Cycle now);

    FrontendKind kind_;
    Predecoder predecoder_;
    std::unique_ptr<ExecEngine> engine_;
    std::unique_ptr<DirectionPredictor> direction_;
    std::unique_ptr<ReturnAddressStack> ras_;
    std::unique_ptr<IndirectTargetCache> itc_;
    std::unique_ptr<Btb> btb_;
    std::unique_ptr<InstMemory> mem_;
    std::unique_ptr<InstPrefetcher> prefetcher_;
    std::unique_ptr<ConfluenceController> confluence_;
    std::unique_ptr<Bpu> bpu_;
    std::unique_ptr<Frontend> frontend_;
};

/**
 * Apply a design point's LLC metadata reservations (SHIFT history,
 * PhantomBTB temporal groups) to a fresh LLC. Must run before any access.
 */
void applyLlcReservations(FrontendKind kind, const SystemConfig &config,
                          Llc &llc);

/** Build a Btb instance of the given design point (shared helpers for
 *  coverage studies that bypass CoreSim). */
std::unique_ptr<Btb> makeBtb(FrontendKind kind, const SystemConfig &config,
                             const Program &program,
                             const Predecoder &predecoder,
                             SharedState &shared, unsigned core_id);

} // namespace cfl

#endif // CFL_CONFLUENCE_FACTORY_HH
