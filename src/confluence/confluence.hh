/**
 * @file
 * Confluence controller: the glue of Section 3 / Figure 4.
 *
 * Whenever an instruction block is brought into the L1-I — proactively by
 * SHIFT or on demand (step 1 in Figure 4) — the controller predecodes the
 * block's branch instructions (branch type + target displacement) and
 * inserts the resulting bundle into AirBTB (step 2), while the block
 * itself goes into the L1-I (step 3). Evictions are mirrored so that the
 * set of blocks in AirBTB and the L1-I stays identical.
 *
 * The controller works with any Btb that accepts block hooks; it is the
 * single place where L1-I content and BTB content are synchronized.
 */

#ifndef CFL_CONFLUENCE_CONFLUENCE_HH
#define CFL_CONFLUENCE_CONFLUENCE_HH

#include "btb/btb.hh"
#include "isa/code_image.hh"
#include "isa/predecoder.hh"
#include "mem/hierarchy.hh"

namespace cfl
{

/** Wires L1-I fill/evict events through the predecoder into a BTB. */
class ConfluenceController
{
  public:
    /**
     * Install the synchronization hooks on @p mem.
     *
     * Demand fills are charged the predecode latency on top of their
     * fill latency (Section 3.2: predecode is off the critical path only
     * for prefetched blocks).
     */
    ConfluenceController(InstMemory &mem, Btb &btb, const CodeImage &image,
                         const Predecoder &predecoder);

    ConfluenceController(const ConfluenceController &) = delete;
    ConfluenceController &operator=(const ConfluenceController &) = delete;

    /** Blocks predecoded so far. */
    Counter blocksPredecoded() const { return blocksPredecoded_; }

  private:
    void onFill(Addr block, bool from_prefetch, Cycle ready);
    void onEvict(Addr block);

    Btb &btb_;
    const CodeImage &image_;
    const Predecoder &predecoder_;
    Counter blocksPredecoded_ = 0;
};

} // namespace cfl

#endif // CFL_CONFLUENCE_CONFLUENCE_HH
