#include "confluence/cmp.hh"

#include "btb/ideal_btb.hh"
#include "common/logging.hh"
#include "trace/trace_cache.hh"

namespace cfl
{

namespace
{

/** Single-core measurement loop with the BTB's concrete type baked in
 *  (see Frontend::runUntil). */
using CoreRunner = void (*)(Frontend &, Counter);

template <typename BtbT>
void
runTyped(Frontend &fe, Counter target)
{
    fe.runUntil<BtbT>(target);
}

/**
 * Resolve the typed runner for a core's actual BTB. The compile-time
 * table covers every type the factory builds; a BTB none of the casts
 * recognize (e.g. a test double) falls back to the virtual-dispatch
 * runner, which is bit-identical, just slower.
 */
CoreRunner
pickRunner(const Btb &btb)
{
    if (dynamic_cast<const ConventionalBtb *>(&btb) != nullptr)
        return &runTyped<ConventionalBtb>;
    if (dynamic_cast<const TwoLevelBtb *>(&btb) != nullptr)
        return &runTyped<TwoLevelBtb>;
    if (dynamic_cast<const PhantomBtb *>(&btb) != nullptr)
        return &runTyped<PhantomBtb>;
    if (dynamic_cast<const AirBtb *>(&btb) != nullptr)
        return &runTyped<AirBtb>;
    if (dynamic_cast<const PerfectBtb *>(&btb) != nullptr)
        return &runTyped<PerfectBtb>;
    return &runTyped<Btb>;
}

} // namespace

double
CmpMetrics::meanIpc() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreMetrics &c : cores)
        sum += c.ipc();
    return sum / cores.size();
}

double
CmpMetrics::meanBtbMpki() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreMetrics &c : cores)
        sum += c.btbMpki();
    return sum / cores.size();
}

double
CmpMetrics::meanL1iMpki() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreMetrics &c : cores)
        sum += c.l1iMpki();
    return sum / cores.size();
}

Counter
CmpMetrics::totalRetired() const
{
    Counter sum = 0;
    for (const CoreMetrics &c : cores)
        sum += c.retired;
    return sum;
}

Cmp::Cmp(FrontendKind kind, WorkloadId workload, const SystemConfig &config,
         std::uint64_t seed_base)
    : config_(config), workload_(workload), seedBase_(seed_base)
{
    cfl_assert(config.numCores > 0, "CMP needs >= 1 core");
    const Program &program = workloadProgram(workload);
    const WorkloadParams wparams = workloadParams(workload);

    llc_ = std::make_unique<Llc>(config.llc);
    applyLlcReservations(kind, config_, *llc_);

    // Latency-dependent metadata parameters derive from the actual LLC.
    config_.phantom.llcLatency = llc_->hitLatency();
    config_.shift.historyReadLatency = llc_->hitLatency();

    shared_.llc = llc_.get();
    if (usesShift(kind)) {
        shiftHistory_ = std::make_unique<ShiftHistory>(config_.shift);
        shared_.shiftHistory = shiftHistory_.get();
    }
    if (usesPhantom(kind)) {
        shared_.phantomHistory =
            std::make_shared<PhantomSharedHistory>(config_.phantom);
    }

    for (unsigned c = 0; c < config.numCores; ++c) {
        const std::uint64_t seed = seed_base + 0x1000ull * c;
        cores_.push_back(std::make_unique<CoreSim>(
            kind, program, wparams, config_, shared_, c, seed,
            /*recorder=*/c == 0));
    }
}

void
Cmp::runUntilRetired(Counter target)
{
    if (cores_.size() == 1) {
        // One core leaves no cross-core LLC interleaving to preserve,
        // so the whole loop can run through the typed fast path
        // (devirtualized BPU walk + quiet-window skip).
        CoreSim &core = *cores_[0];
        pickRunner(core.btb())(core.frontend(), target);
        return;
    }

    // Lockstep round-robin: one cycle per core per global cycle
    // (Section 4.1's round-robin interleaving).
    while (true) {
        bool any_running = false;
        for (auto &core : cores_) {
            if (core->frontend().measuredRetired() < target) {
                core->frontend().tick();
                any_running = true;
            }
        }
        if (!any_running)
            return;
    }
}

void
Cmp::prepareTraces(Counter total_insts)
{
    // The BPU walks the oracle stream ahead of retirement by at most the
    // fetch queue, the in-progress region, the decode buffer, and one
    // peeked instruction; 4K instructions of slack covers that many
    // times over. An undersized buffer would still be correct (the
    // engine resumes live generation from the tail snapshot), just
    // slower for the overflow.
    constexpr Counter kOracleSlack = 4096;
    for (unsigned c = 0; c < numCores(); ++c) {
        ExecEngine &engine = cores_[c]->engine();
        if (engine.instCount() != 0 || engine.replaying())
            continue;  // mid-run reuse: keep whatever mode it is in
        auto trace = traceCache().acquire(
            workload_, seedBase_ + 0x1000ull * c,
            total_insts + kOracleSlack);
        if (trace != nullptr)
            engine.attachTrace(std::move(trace));
    }
}

void
Cmp::runWarmup(Counter warmup_insts)
{
    if (warmup_insts > 0)
        runUntilRetired(warmup_insts);
}

void
Cmp::runMeasurement(Counter measure_insts)
{
    for (auto &core : cores_)
        core->beginMeasurement();

    runUntilRetired(measure_insts);
}

CmpMetrics
Cmp::collectMetrics()
{
    CmpMetrics out;
    for (auto &core : cores_) {
        CoreMetrics m;
        const Frontend &fe = core->frontend();
        const StatSet &bpu = core->bpu().stats();
        const StatSet &mem = core->mem().stats();
        m.retired = fe.measuredRetired();
        m.cycles = fe.measuredCycles();
        m.btbTakenLookups = bpu.get("takenBranchLookups");
        m.btbTakenMisses = bpu.get("btbTakenMisses");
        m.misfetches = bpu.get("misfetches");
        m.condMispredicts = bpu.get("condMispredicts");
        m.l1iDemandFetches = mem.get("demandFetches");
        m.l1iDemandMisses = mem.get("demandMisses");
        m.l1iInFlightHits = mem.get("demandInFlightHits");
        m.btbL2StallCycles = bpu.get("btbLevel2StallCycles");
        m.fetchMissStallCycles =
            fe.stats().get("fetchMissStallCycles");
        out.cores.push_back(m);
    }
    return out;
}

CmpMetrics
Cmp::run(Counter warmup_insts, Counter measure_insts)
{
    prepareTraces(warmup_insts + measure_insts);
    runWarmup(warmup_insts);
    runMeasurement(measure_insts);
    return collectMetrics();
}

} // namespace cfl
