#include "confluence/cmp.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "btb/ideal_btb.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/trace_cache.hh"

namespace cfl
{

namespace
{

/** Single-core measurement loop with the BTB's concrete type baked in
 *  (see Frontend::runUntil). */
using CoreRunner = void (*)(Frontend &, Counter);

template <typename BtbT>
void
runTyped(Frontend &fe, Counter target)
{
    fe.runUntil<BtbT>(target);
}

/**
 * Resolve the typed runner for a core's actual BTB. The compile-time
 * table covers every type the factory builds; a BTB none of the casts
 * recognize (e.g. a test double) falls back to the virtual-dispatch
 * runner, which is bit-identical, just slower.
 */
CoreRunner
pickRunner(const Btb &btb)
{
    if (dynamic_cast<const ConventionalBtb *>(&btb) != nullptr)
        return &runTyped<ConventionalBtb>;
    if (dynamic_cast<const TwoLevelBtb *>(&btb) != nullptr)
        return &runTyped<TwoLevelBtb>;
    if (dynamic_cast<const PhantomBtb *>(&btb) != nullptr)
        return &runTyped<PhantomBtb>;
    if (dynamic_cast<const AirBtb *>(&btb) != nullptr)
        return &runTyped<AirBtb>;
    if (dynamic_cast<const PerfectBtb *>(&btb) != nullptr)
        return &runTyped<PerfectBtb>;
    return &runTyped<Btb>;
}

/** Fast-forward loop with the BTB's concrete type baked in (see
 *  Frontend::fastForward); resolved like pickRunner. */
using CoreSkipper = void (*)(Frontend &, Counter);

template <typename BtbT>
void
skipTyped(Frontend &fe, Counter insts)
{
    fe.fastForward<BtbT>(insts);
}

CoreSkipper
pickSkipper(const Btb &btb)
{
    if (dynamic_cast<const ConventionalBtb *>(&btb) != nullptr)
        return &skipTyped<ConventionalBtb>;
    if (dynamic_cast<const TwoLevelBtb *>(&btb) != nullptr)
        return &skipTyped<TwoLevelBtb>;
    if (dynamic_cast<const PhantomBtb *>(&btb) != nullptr)
        return &skipTyped<PhantomBtb>;
    if (dynamic_cast<const AirBtb *>(&btb) != nullptr)
        return &skipTyped<AirBtb>;
    if (dynamic_cast<const PerfectBtb *>(&btb) != nullptr)
        return &skipTyped<PerfectBtb>;
    return &skipTyped<Btb>;
}

/** Sum @p add's counters into @p into (sampled runs aggregate the
 *  measured intervals' counters into one union window). */
void
accumulateCore(CoreMetrics &into, const CoreMetrics &add)
{
    into.retired += add.retired;
    into.cycles += add.cycles;
    into.btbTakenLookups += add.btbTakenLookups;
    into.btbTakenMisses += add.btbTakenMisses;
    into.misfetches += add.misfetches;
    into.condMispredicts += add.condMispredicts;
    into.l1iDemandFetches += add.l1iDemandFetches;
    into.l1iDemandMisses += add.l1iDemandMisses;
    into.l1iInFlightHits += add.l1iInFlightHits;
    into.btbL2StallCycles += add.btbL2StallCycles;
    into.fetchMissStallCycles += add.fetchMissStallCycles;
}

double gTouchSec = 0.0, gFullSec = 0.0;
Counter gTouchInsts = 0, gFullInsts = 0;

} // namespace

double
CmpMetrics::meanIpc() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreMetrics &c : cores)
        sum += c.ipc();
    return sum / cores.size();
}

double
CmpMetrics::meanBtbMpki() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreMetrics &c : cores)
        sum += c.btbMpki();
    return sum / cores.size();
}

double
CmpMetrics::meanL1iMpki() const
{
    if (cores.empty())
        return 0.0;
    double sum = 0.0;
    for (const CoreMetrics &c : cores)
        sum += c.l1iMpki();
    return sum / cores.size();
}

Counter
CmpMetrics::totalRetired() const
{
    Counter sum = 0;
    for (const CoreMetrics &c : cores)
        sum += c.retired;
    return sum;
}

Cmp::Cmp(FrontendKind kind, WorkloadId workload, const SystemConfig &config,
         std::uint64_t seed_base)
    : config_(config), workload_(workload), seedBase_(seed_base)
{
    cfl_assert(config.numCores > 0, "CMP needs >= 1 core");
    const Program &program = workloadProgram(workload);
    const WorkloadParams wparams = workloadParams(workload);

    llc_ = std::make_unique<Llc>(config.llc);
    applyLlcReservations(kind, config_, *llc_);

    // Latency-dependent metadata parameters derive from the actual LLC.
    config_.phantom.llcLatency = llc_->hitLatency();
    config_.shift.historyReadLatency = llc_->hitLatency();

    shared_.llc = llc_.get();
    if (usesShift(kind)) {
        shiftHistory_ = std::make_unique<ShiftHistory>(config_.shift);
        shared_.shiftHistory = shiftHistory_.get();
    }
    if (usesPhantom(kind)) {
        shared_.phantomHistory =
            std::make_shared<PhantomSharedHistory>(config_.phantom);
    }

    for (unsigned c = 0; c < config.numCores; ++c) {
        const std::uint64_t seed = seed_base + 0x1000ull * c;
        cores_.push_back(std::make_unique<CoreSim>(
            kind, program, wparams, config_, shared_, c, seed,
            /*recorder=*/c == 0));
    }
}

void
Cmp::runUntilRetired(Counter target)
{
    if (cores_.size() == 1) {
        // One core leaves no cross-core LLC interleaving to preserve,
        // so the whole loop can run through the typed fast path
        // (devirtualized BPU walk + quiet-window skip).
        CoreSim &core = *cores_[0];
        pickRunner(core.btb())(core.frontend(), target);
        return;
    }

    // Lockstep round-robin: one cycle per core per global cycle
    // (Section 4.1's round-robin interleaving).
    while (true) {
        bool any_running = false;
        for (auto &core : cores_) {
            if (core->frontend().measuredRetired() < target) {
                core->frontend().tick();
                any_running = true;
            }
        }
        if (!any_running)
            return;
    }
}

void
Cmp::prepareTraces(Counter total_insts)
{
    // The BPU walks the oracle stream ahead of retirement by at most the
    // fetch queue, the in-progress region, the decode buffer, and one
    // peeked instruction; 4K instructions of slack covers that many
    // times over. An undersized buffer would still be correct (the
    // engine resumes live generation from the tail snapshot), just
    // slower for the overflow.
    constexpr Counter kOracleSlack = 4096;
    for (unsigned c = 0; c < numCores(); ++c) {
        ExecEngine &engine = cores_[c]->engine();
        if (engine.instCount() != 0 || engine.replaying())
            continue;  // mid-run reuse: keep whatever mode it is in
        auto trace = traceCache().acquire(
            workload_, seedBase_ + 0x1000ull * c,
            total_insts + kOracleSlack);
        if (trace != nullptr)
            engine.attachTrace(std::move(trace));
    }
}

void
Cmp::runWarmup(Counter warmup_insts)
{
    if (warmup_insts > 0)
        runUntilRetired(warmup_insts);
}

void
Cmp::runMeasurement(Counter measure_insts)
{
    for (auto &core : cores_)
        core->beginMeasurement();

    runUntilRetired(measure_insts);
}

CmpMetrics
Cmp::collectMetrics()
{
    CmpMetrics out;
    for (auto &core : cores_) {
        CoreMetrics m;
        const Frontend &fe = core->frontend();
        const StatSet &bpu = core->bpu().stats();
        const StatSet &mem = core->mem().stats();
        m.retired = fe.measuredRetired();
        m.cycles = fe.measuredCycles();
        m.btbTakenLookups = bpu.get("takenBranchLookups");
        m.btbTakenMisses = bpu.get("btbTakenMisses");
        m.misfetches = bpu.get("misfetches");
        m.condMispredicts = bpu.get("condMispredicts");
        m.l1iDemandFetches = mem.get("demandFetches");
        m.l1iDemandMisses = mem.get("demandMisses");
        m.l1iInFlightHits = mem.get("demandInFlightHits");
        m.btbL2StallCycles = bpu.get("btbLevel2StallCycles");
        m.fetchMissStallCycles =
            fe.stats().get("fetchMissStallCycles");
        out.cores.push_back(m);
    }
    return out;
}

CmpMetrics
Cmp::run(Counter warmup_insts, Counter measure_insts)
{
    prepareTraces(warmup_insts + measure_insts);
    runWarmup(warmup_insts);
    runMeasurement(measure_insts);
    return collectMetrics();
}

void
Cmp::runDetailedDelta(Counter delta)
{
    if (delta == 0)
        return;
    if (cores_.size() == 1) {
        CoreSim &core = *cores_[0];
        pickRunner(core.btb())(core.frontend(),
                               core.frontend().measuredRetired() + delta);
        return;
    }

    // Lockstep round-robin with per-core absolute targets: each core's
    // own current position plus delta (positions drift apart because
    // fast-forward never splits a fetch region).
    std::vector<Counter> targets(cores_.size());
    for (std::size_t c = 0; c < cores_.size(); ++c)
        targets[c] = cores_[c]->frontend().measuredRetired() + delta;
    while (true) {
        bool any_running = false;
        for (std::size_t c = 0; c < cores_.size(); ++c) {
            if (cores_[c]->frontend().measuredRetired() < targets[c]) {
                cores_[c]->frontend().tick();
                any_running = true;
            }
        }
        if (!any_running)
            return;
    }
}

void
Cmp::fastForwardAll(Counter delta)
{
    // Stream distance closer to the next measured interval than this
    // always crosses the full-fidelity fastForward path. The touch tier
    // keeps content and per-branch predictor state warm, but not what
    // only real lookups produce: first-level BTB recency, prefetch
    // engine streams and error rates, and in-flight fill timing. This
    // window rebuilds those; shrinking it below ~6k re-biases the
    // FDP-paired points (the error EWMA integrates the residual relearn
    // transient over ~20k instructions).
    constexpr Counter kPredictorWarmInsts = 6'000;

    // Stream distance beyond this (plus the full-fidelity window) is
    // skipped outright, with no warming at all: the touch window
    // re-installs every block the skipped stretch would have (the
    // instruction working set cycles much faster than this), and the
    // SHIFT history ring's reach is far shorter, so the recorded
    // metadata the touch window writes is what the skipped stretch
    // would have left behind anyway.
    constexpr Counter kTouchWarmInsts = 256'000;

    if (delta == 0)
        return;
    static const bool kProf =
        std::getenv("CFL_SAMPLING_PROFILE") != nullptr;
    for (auto &core : cores_) {
        Frontend &fe = core->frontend();
        Counter remaining = delta;
        if (remaining > kTouchWarmInsts + kPredictorWarmInsts) {
            const Counter skipped = fe.fastForwardSkip(
                remaining - kTouchWarmInsts - kPredictorWarmInsts);
            remaining = skipped < remaining ? remaining - skipped : 0;
        }
        if (remaining > kPredictorWarmInsts) {
            const auto t0 = std::chrono::steady_clock::now();
            const Counter touched =
                fe.fastForwardTouch(remaining - kPredictorWarmInsts);
            if (kProf) {
                gTouchSec +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                gTouchInsts += touched;
            }
            remaining = touched < remaining ? remaining - touched : 0;
        }
        if (remaining > 0) {
            const auto t0 = std::chrono::steady_clock::now();
            pickSkipper(core->btb())(fe, remaining);
            if (kProf) {
                gFullSec += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
                gFullInsts += remaining;
            }
        }
    }
}

CmpMetrics
Cmp::runSampled(Counter warmup_insts, Counter measure_insts,
                const SamplingSpec &spec)
{
    cfl_assert(spec.enabled(), "runSampled with a disabled SamplingSpec");
    cfl_assert(spec.intervalInsts > 0, "sampling interval must be > 0");
    cfl_assert(spec.periodInsts >=
                   spec.intervalInsts + spec.detailedWarmupInsts,
               "sampling period (%llu) must cover interval (%llu) + "
               "detailed warmup (%llu)",
               static_cast<unsigned long long>(spec.periodInsts),
               static_cast<unsigned long long>(spec.intervalInsts),
               static_cast<unsigned long long>(spec.detailedWarmupInsts));

    const Counter total = warmup_insts + measure_insts;
    prepareTraces(total);

    const Counter unit = spec.intervalInsts;
    const Counter warm = spec.detailedWarmupInsts;
    const Counter period = spec.periodInsts;

    // Systematic sampling with a deterministic random phase: interval i
    // measures [start_i, start_i + unit) of the nominal stream, with
    // start_i = warmup + phase + i * period. The phase decorrelates the
    // schedule from stream periodicity yet is a pure function of
    // (seed base, rng stream), so sampled runs are bit-reproducible.
    // phase >= warm keeps the first detailed warmup inside the budget.
    Rng rng(hashCombine(seedBase_,
                        hashCombine(0x5a3317ull, spec.rngStream)));
    const Counter phase =
        warm + rng.nextBelow(period - unit - warm + 1);

    std::uint64_t n_intervals = 0;
    for (Counter s = warmup_insts + phase; s + unit <= total; s += period)
        ++n_intervals;
    cfl_assert(n_intervals >= 2,
               "sampling spec yields %llu measured interval(s); at "
               "least 2 are needed for a confidence interval — shrink "
               "periodInsts or grow the measure budget",
               static_cast<unsigned long long>(n_intervals));

    CmpMetrics agg;
    agg.cores.resize(numCores());

    const bool profile = std::getenv("CFL_SAMPLING_PROFILE") != nullptr;
    double ff_sec = 0.0, det_sec = 0.0;
    Counter ff_insts = 0, det_insts = 0;

    Counter pos = 0; // nominal stream position already covered
    for (std::uint64_t i = 0; i < n_intervals; ++i) {
        const Counter start = warmup_insts + phase + i * period;
        const Counter warm_start = start - warm;
        if (profile) {
            const auto t0 = std::chrono::steady_clock::now();
            fastForwardAll(warm_start - pos);
            const auto t1 = std::chrono::steady_clock::now();
            runDetailedDelta(warm);
            for (auto &core : cores_)
                core->beginMeasurement();
            runDetailedDelta(unit);
            const auto t2 = std::chrono::steady_clock::now();
            ff_sec += std::chrono::duration<double>(t1 - t0).count();
            det_sec += std::chrono::duration<double>(t2 - t1).count();
            ff_insts += warm_start - pos;
            det_insts += warm + unit;
        } else {
            fastForwardAll(warm_start - pos);
            runDetailedDelta(warm);
            for (auto &core : cores_)
                core->beginMeasurement();
            runDetailedDelta(unit);
        }
        pos = start + unit;

        const CmpMetrics interval = collectMetrics();
        for (unsigned c = 0; c < numCores(); ++c)
            accumulateCore(agg.cores[c], interval.cores[c]);
        // CPI, not IPC: intervals retire equal instruction counts, so
        // mean-of-CPIs is the union window's CPI (linear, unbiased);
        // mean-of-IPCs would be Jensen-biased high.
        double cpi_sum = 0.0;
        for (const CoreMetrics &c : interval.cores)
            cpi_sum += c.retired > 0
                           ? static_cast<double>(c.cycles) /
                                 static_cast<double>(c.retired)
                           : 0.0;
        agg.sampling.cpi.add(cpi_sum /
                             static_cast<double>(interval.cores.size()));
        agg.sampling.btbMpki.add(interval.meanBtbMpki());
        agg.sampling.l1iMpki.add(interval.meanL1iMpki());
    }
    if (profile)
        std::fprintf(stderr,
                     "sampling profile [%s]: ff %.1f Minsts/s (%.3fs), "
                     "detailed %.1f Minsts/s (%.3fs) | cumulative "
                     "touch %.1f M/s (%.3fs) full %.1f M/s (%.3fs)\n",
                     cores_.front()->btb().name().c_str(),
                     ff_insts / ff_sec / 1e6, ff_sec,
                     det_insts / det_sec / 1e6, det_sec,
                     gTouchInsts / gTouchSec / 1e6, gTouchSec,
                     gFullInsts / gFullSec / 1e6, gFullSec);
    return agg;
}

} // namespace cfl
