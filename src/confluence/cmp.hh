/**
 * @file
 * CMP timing simulation: N cores ticked in lockstep around a shared LLC
 * and shared prefetcher metadata (Section 4.1: a tiled sixteen-core
 * server processor; one instruction stream per core).
 *
 * Core 0 is the SHIFT history generator; all cores replay the shared
 * history (Section 3.4). Each core runs its own ExecEngine instance of
 * the same program with a distinct seed, modeling cores serving
 * independent request streams of one workload.
 */

#ifndef CFL_CONFLUENCE_CMP_HH
#define CFL_CONFLUENCE_CMP_HH

#include <memory>
#include <vector>

#include "confluence/factory.hh"
#include "sim/sampling.hh"

namespace cfl
{

/** Per-core timing metrics from a CMP run. */
struct CoreMetrics
{
    Counter retired = 0;
    Cycle cycles = 0;
    Counter btbTakenLookups = 0;
    Counter btbTakenMisses = 0;
    Counter misfetches = 0;
    Counter condMispredicts = 0;
    Counter l1iDemandFetches = 0;
    Counter l1iDemandMisses = 0;
    Counter l1iInFlightHits = 0;
    Counter btbL2StallCycles = 0;
    Counter fetchMissStallCycles = 0;

    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(retired) / cycles;
    }
    double btbMpki() const
    {
        return retired == 0 ? 0.0 : 1000.0 * btbTakenMisses / retired;
    }
    double l1iMpki() const
    {
        return retired == 0 ? 0.0 : 1000.0 * l1iDemandMisses / retired;
    }
};

/** Whole-CMP metrics. */
struct CmpMetrics
{
    std::vector<CoreMetrics> cores;

    /**
     * Per-metric confidence estimators of a sampled run (one
     * observation per measured interval); empty after an exact run.
     * The counters in `cores` always hold the union of the measured
     * windows, so meanIpc() etc. are point estimates either way.
     */
    SampleEstimates sampling;

    double meanIpc() const;
    double meanBtbMpki() const;
    double meanL1iMpki() const;
    Counter totalRetired() const;
};

/** Seed base Cmp uses when the caller does not supply one. */
inline constexpr std::uint64_t kDefaultCmpSeedBase = 0xc0fe;

/** A CMP running one workload under one front-end design. */
class Cmp
{
  public:
    /**
     * @param seed_base base of the per-core ExecEngine seeds. Equal
     *        bases give bit-identical runs; sweep points derive theirs
     *        deterministically from the point coordinates.
     */
    Cmp(FrontendKind kind, WorkloadId workload, const SystemConfig &config,
        std::uint64_t seed_base = kDefaultCmpSeedBase);

    /**
     * Run @p warmup_insts then measure @p measure_insts retired
     * instructions per core; returns per-core and aggregate metrics.
     * Exactly prepareTraces(w + m); runWarmup(w); runMeasurement(m);
     * return collectMetrics().
     */
    CmpMetrics run(Counter warmup_insts, Counter measure_insts);

    /**
     * SMARTS-style sampled equivalent of run(): the same instruction
     * budget, but only short detailed intervals are cycle-simulated.
     * The gaps are covered by functional fast-forward (branch history,
     * BTB, and cache state advance; no timing), each interval is
     * preceded by spec.detailedWarmupInsts of detailed warmup, and each
     * interval contributes one observation to the returned estimators
     * (metrics.sampling). The interval schedule is a pure function of
     * (spec, seed base), so sampled runs are bit-reproducible; they are
     * *not* bit-comparable to exact runs — that is what the estimators'
     * confidence intervals are for.
     */
    CmpMetrics runSampled(Counter warmup_insts, Counter measure_insts,
                          const SamplingSpec &spec);

    // Stepping API: run() split into its four phases so batched sweep
    // drivers (sim/batched.cc) can hoist trace acquisition out of the
    // per-point loop and drive points individually. Calling the four
    // phases in order is bit-identical to run().

    /**
     * Predecode phase: swap each core's engine onto a shared replay
     * trace sized for @p total_insts retired instructions, when the
     * trace cache can serve one. Engines already replaying (e.g. a
     * trace attached directly by a batched driver) are left alone, so
     * pre-attaching a longer shared buffer is safe: results do not
     * depend on trace-buffer length, only on the generated stream.
     */
    void prepareTraces(Counter total_insts);

    /** Warm caches, predictors, and prefetcher history for
     *  @p warmup_insts retired instructions per core. */
    void runWarmup(Counter warmup_insts);

    /** Reset measurement counters, then run @p measure_insts retired
     *  instructions per core. */
    void runMeasurement(Counter measure_insts);

    /** Extract per-core metrics for the measured window. */
    CmpMetrics collectMetrics();

    CoreSim &core(unsigned i) { return *cores_[i]; }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    Llc &llc() { return *llc_; }

  private:
    /** Tick every unfinished core until each retires @p target. */
    void runUntilRetired(Counter target);

    /** Detailed-simulate @p delta more retired instructions per core
     *  from wherever each core currently stands. */
    void runDetailedDelta(Counter delta);

    /** Functionally fast-forward every core by @p delta instructions
     *  (see Frontend::fastForward). */
    void fastForwardAll(Counter delta);

    SystemConfig config_;
    WorkloadId workload_;
    std::uint64_t seedBase_;
    std::unique_ptr<Llc> llc_;
    std::unique_ptr<ShiftHistory> shiftHistory_;
    SharedState shared_;
    std::vector<std::unique_ptr<CoreSim>> cores_;
};

} // namespace cfl

#endif // CFL_CONFLUENCE_CMP_HH
