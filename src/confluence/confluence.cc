#include "confluence/confluence.hh"

namespace cfl
{

ConfluenceController::ConfluenceController(InstMemory &mem, Btb &btb,
                                           const CodeImage &image,
                                           const Predecoder &predecoder)
    : btb_(btb), image_(image), predecoder_(predecoder)
{
    mem.setFillHook(
        InstMemory::FillHook::bind<&ConfluenceController::onFill>(this));
    mem.setEvictHook(
        InstMemory::EvictHook::bind<&ConfluenceController::onEvict>(this));
}

void
ConfluenceController::onFill(Addr block, bool from_prefetch, Cycle ready)
{
    const PredecodedBlock pre = predecoder_.scan(image_, block);
    ++blocksPredecoded_;
    // Demand fills see the block a few cycles later because the
    // predecoder scans it before insertion; prefetched blocks hide
    // this entirely (Section 3.2).
    const Cycle meta_ready =
        from_prefetch ? ready : ready + predecoder_.latency();
    btb_.onBlockFill(pre, from_prefetch, meta_ready);
}

void
ConfluenceController::onEvict(Addr block)
{
    btb_.onBlockEvict(block);
}

} // namespace cfl
