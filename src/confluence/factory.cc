#include "confluence/factory.hh"

#include "btb/ideal_btb.hh"
#include "common/logging.hh"
#include "prefetch/fdp.hh"

namespace cfl
{

std::string
frontendKindName(FrontendKind kind)
{
    switch (kind) {
      case FrontendKind::Baseline: return "Baseline(1K BTB)";
      case FrontendKind::Fdp: return "FDP";
      case FrontendKind::PhantomFdp: return "PhantomBTB+FDP";
      case FrontendKind::TwoLevelFdp: return "2LevelBTB+FDP";
      case FrontendKind::PhantomShift: return "PhantomBTB+SHIFT";
      case FrontendKind::TwoLevelShift: return "2LevelBTB+SHIFT";
      case FrontendKind::IdealBtbShift: return "IdealBTB+SHIFT";
      case FrontendKind::Confluence: return "Confluence";
      case FrontendKind::Ideal: return "Ideal";
    }
    return "?";
}

std::string
frontendKindSlug(FrontendKind kind)
{
    switch (kind) {
      case FrontendKind::Baseline: return "baseline";
      case FrontendKind::Fdp: return "fdp";
      case FrontendKind::PhantomFdp: return "phantom_fdp";
      case FrontendKind::TwoLevelFdp: return "two_level_fdp";
      case FrontendKind::PhantomShift: return "phantom_shift";
      case FrontendKind::TwoLevelShift: return "two_level_shift";
      case FrontendKind::IdealBtbShift: return "ideal_btb_shift";
      case FrontendKind::Confluence: return "confluence";
      case FrontendKind::Ideal: return "ideal";
    }
    return "?";
}

FrontendKind
frontendKindFromSlug(const std::string &slug)
{
    for (const FrontendKind kind : allFrontendKinds())
        if (frontendKindSlug(kind) == slug)
            return kind;
    cfl_fatal("unknown front-end kind \"%s\"", slug.c_str());
}

const std::vector<FrontendKind> &
allFrontendKinds()
{
    static const std::vector<FrontendKind> kAll = {
        FrontendKind::Baseline,       FrontendKind::Fdp,
        FrontendKind::PhantomFdp,     FrontendKind::TwoLevelFdp,
        FrontendKind::PhantomShift,   FrontendKind::TwoLevelShift,
        FrontendKind::IdealBtbShift,  FrontendKind::Confluence,
        FrontendKind::Ideal,
    };
    return kAll;
}

bool
usesShift(FrontendKind kind)
{
    return kind == FrontendKind::PhantomShift ||
           kind == FrontendKind::TwoLevelShift ||
           kind == FrontendKind::IdealBtbShift ||
           kind == FrontendKind::Confluence;
}

bool
usesFdp(FrontendKind kind)
{
    return kind == FrontendKind::Fdp || kind == FrontendKind::PhantomFdp ||
           kind == FrontendKind::TwoLevelFdp;
}

bool
usesPhantom(FrontendKind kind)
{
    return kind == FrontendKind::PhantomFdp ||
           kind == FrontendKind::PhantomShift;
}

void
applyLlcReservations(FrontendKind kind, const SystemConfig &config, Llc &llc)
{
    std::uint64_t bytes = 0;
    if (usesShift(kind))
        bytes += config.shift.historyLlcBytes();
    if (usesPhantom(kind))
        bytes += config.phantom.numGroups * kBlockBytes;
    if (bytes > 0)
        llc.reserveMetadata(bytes);
}

std::unique_ptr<Btb>
makeBtb(FrontendKind kind, const SystemConfig &config,
        const Program &program, const Predecoder &predecoder,
        SharedState &shared, unsigned core_id)
{
    switch (kind) {
      case FrontendKind::Baseline:
      case FrontendKind::Fdp:
        return std::make_unique<ConventionalBtb>(config.baselineBtb,
                                                 "btb.conv1k");

      case FrontendKind::PhantomFdp:
      case FrontendKind::PhantomShift: {
        cfl_assert(shared.phantomHistory != nullptr,
                   "Phantom design needs a shared history");
        return std::make_unique<PhantomBtb>(
            config.phantom, shared.phantomHistory, core_id);
      }

      case FrontendKind::TwoLevelFdp:
      case FrontendKind::TwoLevelShift:
        return std::make_unique<TwoLevelBtb>(config.twoLevel);

      case FrontendKind::IdealBtbShift:
        return std::make_unique<ConventionalBtb>(config.idealBtb,
                                                 "btb.conv16k");

      case FrontendKind::Confluence:
        return std::make_unique<AirBtb>(config.air, program.image,
                                        predecoder);

      case FrontendKind::Ideal:
        return std::make_unique<PerfectBtb>();
    }
    cfl_panic("unknown frontend kind");
}

CoreSim::CoreSim(FrontendKind kind, const Program &program,
                 const WorkloadParams &wparams, const SystemConfig &config,
                 SharedState &shared, unsigned core_id, std::uint64_t seed,
                 bool recorder)
    : kind_(kind), predecoder_(config.predecodeLatency)
{
    cfl_assert(shared.llc != nullptr, "CoreSim needs a shared LLC");

    engine_ = std::make_unique<ExecEngine>(program, wparams, seed);
    direction_ = std::make_unique<HybridPredictor>();
    ras_ = std::make_unique<ReturnAddressStack>();
    itc_ = std::make_unique<IndirectTargetCache>();
    btb_ = makeBtb(kind, config, program, predecoder_, shared, core_id);

    InstMemoryParams mem_params = config.instMem;
    if (kind == FrontendKind::Ideal)
        mem_params.perfectL1I = true;
    mem_ = std::make_unique<InstMemory>(mem_params, *shared.llc);

    if (usesShift(kind)) {
        cfl_assert(shared.shiftHistory != nullptr,
                   "SHIFT design needs a shared history");
        prefetcher_ = std::make_unique<ShiftEngine>(
            config.shift, *shared.shiftHistory, *mem_, recorder);
    } else if (usesFdp(kind)) {
        prefetcher_ = std::make_unique<FdpPrefetcher>(*mem_);
    }

    if (btb_->wantsBlockHooks()) {
        confluence_ = std::make_unique<ConfluenceController>(
            *mem_, *btb_, program.image, predecoder_);
    }
    if (auto *air = dynamic_cast<AirBtb *>(btb_.get())) {
        // Unified metadata: an AirBTB miss in a non-resident block is
        // the front-end's earliest view of an instruction miss. It
        // redirects the stream prefetcher (the same event an L1-I miss
        // would raise, since AirBTB mirrors the L1-I) and triggers the
        // block's own fill and bundle insertion.
        air->setFillRequest(
            AirBtb::FillRequest::bind<&CoreSim::requestAirFill>(this));
    }

    bpu_ = std::make_unique<Bpu>(config.bpu, *btb_, *direction_, *ras_,
                                 *itc_, *engine_, mem_.get());
    frontend_ = std::make_unique<Frontend>(config.frontend, *bpu_, *mem_,
                                           prefetcher_.get());
}

void
CoreSim::requestAirFill(Addr block, Cycle now)
{
    if (prefetcher_ != nullptr)
        prefetcher_->onDemandMiss(block, now);
    mem_->prefetch(block, now);
}

void
CoreSim::beginMeasurement()
{
    frontend_->beginMeasurement();
    bpu_->stats().resetAll();
    btb_->stats().resetAll();
    mem_->stats().resetAll();
    mem_->l1i().stats().resetAll();
    direction_->stats().resetAll();
    ras_->stats().resetAll();
    itc_->stats().resetAll();
    if (prefetcher_ != nullptr)
        prefetcher_->stats().resetAll();
}

} // namespace cfl
